// Package serve implements the model-serving side of the TASQ system
// integration (Figure 4): an HTTP scoring service that accepts an incoming
// job's compile-time information, featurizes it through the trained
// pipeline and returns the predicted PCC, run-time estimates over candidate
// token counts, and the optimal token recommendation. A typed Go client
// mirrors the Python client for SCOPE.
//
// The service is production-hardened: single (`POST /v1/score`) and batch
// (`POST /v1/score/batch`) scoring over a bounded worker pool, Prometheus
// metrics at `GET /metrics`, liveness (`/healthz`) and readiness
// (`/readyz`) probes, structured request logging with request IDs, and a
// strict error contract — invalid requests yield HTTP 400, internal
// pipeline failures HTTP 500.
//
// Scoring is model-addressable: a request may name any registered
// predictor (trained models or the §6 baselines) via the optional `model`
// field, batch items route independently, and `GET /v1/models` lists what
// the loaded pipeline can serve. Naming an unknown model is a client
// error (400); naming a known predictor the loaded pipeline never trained
// is a conflict (409) — retrying the same request against a generation
// that trained it would succeed.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"tasq/internal/faults"
	"tasq/internal/model"
	"tasq/internal/obs"
	"tasq/internal/pcc"
	"tasq/internal/plan"
	"tasq/internal/scopesim"
	"tasq/internal/trainer"
)

// maxBodyBytes bounds request and response bodies read into memory.
const maxBodyBytes = 16 << 20

// ScoreRequest is the scoring-pipeline input: the compile-time job
// description plus optional what-if parameters.
type ScoreRequest struct {
	Job *scopesim.Job `json:"job"`
	// CandidateTokens are token counts to tabulate run-time predictions
	// for; defaults to a sweep up to the requested tokens.
	CandidateTokens []int `json:"candidate_tokens,omitempty"`
	// Threshold is the §2.1 optimal-allocation termination threshold
	// (default 0.01: demand ≥1% improvement per extra token). Negative
	// values are rejected.
	Threshold float64 `json:"threshold,omitempty"`
	// MaxTokens caps the optimal-token search (default: requested
	// tokens). Negative values are rejected.
	MaxTokens int `json:"max_tokens,omitempty"`
	// Model names the predictor to score with (case/spacing-insensitive,
	// e.g. "NN", "xgboost-pl", "Jockey"). Empty follows the server's
	// fallback policy. Unknown names are rejected with 400; known but
	// untrained predictors with 409.
	Model string `json:"model,omitempty"`
}

// CurveJSON is the serialized PCC.
type CurveJSON struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

// PointJSON is one predicted (tokens, runtime) pair.
type PointJSON struct {
	Tokens         int     `json:"tokens"`
	RuntimeSeconds float64 `json:"runtime_seconds"`
}

// ScoreResponse is the scoring-pipeline output.
type ScoreResponse struct {
	Model string `json:"model"`
	// ModelVersion is the registry version that served this score (0 =
	// unversioned, e.g. a file-loaded model).
	ModelVersion  int         `json:"model_version,omitempty"`
	Curve         CurveJSON   `json:"curve"`
	OptimalTokens int         `json:"optimal_tokens"`
	Predictions   []PointJSON `json:"predictions"`
}

// scorer is the slice of trainer.Pipeline the server needs; tests inject
// failing implementations to exercise the internal-error path.
type scorer interface {
	ScoreJob(job *scopesim.Job) (pcc.Curve, string, error)
}

// modelRouter is the optional scorer upgrade for by-name routing;
// trainer.Pipeline implements it. Scorers without it still serve
// policy-routed requests but reject requests that name a model.
type modelRouter interface {
	ScoreJobModel(name string, job *scopesim.Job) (pcc.Curve, string, error)
}

// modelLister is the optional scorer upgrade behind GET /v1/models.
type modelLister interface {
	ModelInfos() []model.Info
}

// scoreVia dispatches one request to the scorer, by name when the request
// asks for a specific model.
func scoreVia(sc scorer, req *ScoreRequest) (pcc.Curve, string, error) {
	return scoreViaName(sc, req.Model, req.Job)
}

// scoreViaName dispatches one (model, job) pair to the scorer — the form
// the planner uses, where one request carries many jobs.
func scoreViaName(sc scorer, modelName string, job *scopesim.Job) (pcc.Curve, string, error) {
	if modelName == "" {
		return sc.ScoreJob(job)
	}
	mr, ok := sc.(modelRouter)
	if !ok {
		return pcc.Curve{}, "", reqErrf("serve: loaded model cannot route by model name (%q requested)", modelName)
	}
	return mr.ScoreJobModel(modelName, job)
}

// requestError marks a client-side validation failure. Handlers map it to
// HTTP 400; every other scoring error is an internal failure and maps to
// HTTP 500.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// reqErrf builds a requestError.
func reqErrf(format string, args ...any) error {
	return &requestError{err: fmt.Errorf(format, args...)}
}

// errNoModel is returned while no model has been loaded yet (unloaded
// server before its first registry sync); it maps to 503 so load
// balancers retry elsewhere instead of counting a client error.
var errNoModel = errors.New("serve: no model loaded")

// httpStatus maps a scoring error onto the 400/409/503/500 contract.
// Unknown model names are client errors; known-but-untrained (or
// not-covering-this-job) predictors are conflicts with the loaded model
// generation, retryable against a generation that trained them.
func httpStatus(err error) int {
	var re *requestError
	if errors.As(err, &re) {
		return http.StatusBadRequest
	}
	if errors.Is(err, model.ErrUnknownModel) {
		return http.StatusBadRequest
	}
	// A missing token bound is the caller's omission (supply max_tokens or
	// score a record with observed tokens), same contract as a negative one.
	if errors.Is(err, trainer.ErrNoTokenBound) {
		return http.StatusBadRequest
	}
	// The shared allocation core's validation failures are the planner
	// request's to fix: infeasible capacities, empty batches, allocations
	// outside the pool, unknown policies, degenerate curves.
	if errors.Is(err, plan.ErrBadCapacity) || errors.Is(err, plan.ErrNoJobs) ||
		errors.Is(err, plan.ErrBadAllocation) || errors.Is(err, plan.ErrBadPolicy) ||
		errors.Is(err, plan.ErrBadCurve) || errors.Is(err, plan.ErrBadArrival) ||
		errors.Is(err, plan.ErrBadDeadline) || errors.Is(err, plan.ErrBadQuota) ||
		errors.Is(err, plan.ErrBadStrategy) {
		return http.StatusBadRequest
	}
	if errors.Is(err, model.ErrUntrained) || errors.Is(err, model.ErrUncovered) {
		return http.StatusConflict
	}
	if errors.Is(err, errNoModel) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// StatusError is returned by Client methods when the service answers with
// a non-200 status, preserving the code so callers — and the client's own
// retry loop — can distinguish their bad requests (400, 409) from
// overload and server-side failures (429, 5xx).
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the service's Retry-After hint, when one was sent
	// (overload sheds carry it); 0 means none.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: status %d: %s", e.Code, e.Message)
}

// Temporary reports whether the status signals a transient condition a
// retry may outlive: overload shedding (429), a bad gateway (502), a
// draining or unloaded service (503), or a queue-deadline timeout (504).
func (e *StatusError) Temporary() bool {
	switch e.Code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an
// HTTP-date. 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(h); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// activeModel is one loaded model generation: an immutable scorer plus
// the registry version it came from (0 = unversioned, e.g. a -model
// file). Swaps replace the whole value through an atomic pointer, so
// in-flight requests keep the generation they started with. The curve
// cache rides inside the generation: the same atomic store that installs
// a new scorer installs its fresh, empty cache, so no ordering of loads
// can pair a new generation with a predecessor's memoized curves.
type activeModel struct {
	scorer  scorer
	version int
	cache   *curveCache
}

// shadowModel is a candidate generation scored alongside the active one.
// Its divergence metrics are resolved per candidate version at swap time,
// so /metrics separates the divergence of v3-vs-v2 from v4-vs-v2.
type shadowModel struct {
	scorer   scorer
	version  int
	scores   *obs.Counter
	failures *obs.Counter
	disagree *obs.Counter
	delta    *obs.Histogram
}

// Server scores jobs with a trained pipeline. One Server is shared across
// all handler goroutines; each loaded model is immutable and swapped
// atomically, so the server itself never restarts to pick up a new
// version.
type Server struct {
	active   atomic.Pointer[activeModel]
	shadow   atomic.Pointer[shadowModel]
	mux      *http.ServeMux
	reg      *obs.Registry
	logger   *obs.Logger
	workers  int
	maxBatch int
	ready    atomic.Bool

	// gate sheds scoring work beyond the configured concurrency + queue
	// bounds; inj, when set, injects deterministic faults (test/dev only).
	gate        *gate
	inj         *faults.Injector
	maxInFlight int
	maxQueue    int
	queueWait   time.Duration
	retryAfter  time.Duration

	// shadowEvery samples every Nth scoring request into the shadow
	// model; 0 disables shadow scoring.
	shadowEvery int64
	shadowSeq   atomic.Int64

	// cacheCap bounds each generation's memoized-curve cache; ≤ 0
	// disables memoization entirely. cacheMet holds the obs handles the
	// per-generation caches share.
	cacheCap int
	cacheMet *cacheMetrics

	// reloadFn, when set, is invoked by POST /v1/admin/reload to sync
	// against the model registry immediately.
	reloadFn atomic.Pointer[func() error]

	// telemetry, when set, receives observed-run records from POST
	// /v1/telemetry — the feedback half of the learning loop.
	telemetry         TelemetrySink
	telemetryAccepted *obs.Counter
	telemetryRejected *obs.Counter
	telemetryShed     *obs.Counter

	// clusterID and clusterPeers identify this server's place in a tasqd
	// fleet; GET /v1/cluster answers 404 until WithClusterInfo sets them.
	clusterID    string
	clusterPeers []string

	// maxPlanJobs caps the jobs accepted per /v1/plan request.
	maxPlanJobs  int
	planMet      map[string]*planStrategyMetrics
	planMakespan *obs.Histogram
	planWait     *obs.Histogram

	scoreOK       *obs.Counter
	scoreRejected *obs.Counter
	scoreFailed   *obs.Counter
	activeVersion *obs.Gauge
	shadowVersion *obs.Gauge
}

// Option customizes a Server.
type Option func(*Server)

// WithRegistry shares an external metrics registry (e.g. with the process
// hosting the server). By default each Server gets its own.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithLogger enables structured request logging.
func WithLogger(l *obs.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithWorkers bounds the batch-scoring worker pool (default
// runtime.NumCPU()).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithMaxBatch caps the number of items accepted per batch request
// (default DefaultMaxBatch).
func WithMaxBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// DefaultMaxBatch is the default per-request batch item cap.
const DefaultMaxBatch = 1024

// WithAdmission bounds the scoring endpoints: at most limit requests
// execute concurrently, at most queue wait behind them (FIFO), and no
// request waits longer than wait before being shed with 504. Arrivals
// beyond the queue bound are shed immediately with 429 + Retry-After.
// Zero/negative arguments keep the defaults (DefaultMaxInFlight,
// DefaultMaxQueue, DefaultQueueWait).
func WithAdmission(limit, queue int, wait time.Duration) Option {
	return func(s *Server) {
		if limit > 0 {
			s.maxInFlight = limit
		}
		if queue >= 0 {
			s.maxQueue = queue
		}
		if wait > 0 {
			s.queueWait = wait
		}
	}
}

// WithAdmissionRetryAfter sets the Retry-After hint on shed responses
// (default DefaultRetryAfter; the header rounds up to whole seconds).
func WithAdmissionRetryAfter(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.retryAfter = d
		}
	}
}

// WithFaultInjector threads a deterministic fault injector into the
// scoring path: injected latency, synthetic scoring errors and per-item
// batch failures. For chaos tests and the tasqd -fault-profile dev flag —
// never production.
func WithFaultInjector(in *faults.Injector) Option {
	return func(s *Server) { s.inj = in }
}

// WithShadowSampleRate sets the fraction of scoring requests that are
// also scored by the shadow (candidate) model when one is loaded: 1
// shadows every request, 0.1 every tenth, 0 disables shadow scoring.
// The default is 1 — with the cheap PCC models, full mirroring is
// affordable and gives the fastest divergence signal.
func WithShadowSampleRate(rate float64) Option {
	return func(s *Server) {
		switch {
		case rate <= 0:
			s.shadowEvery = 0
		case rate >= 1:
			s.shadowEvery = 1
		default:
			s.shadowEvery = int64(math.Round(1 / rate))
		}
	}
}

// WithCurveCache bounds the per-generation memoized-curve cache to
// roughly capacity entries (default DefaultCurveCacheCap); capacity <= 0
// disables memoization, so every request runs the full predictor.
func WithCurveCache(capacity int) Option {
	return func(s *Server) { s.cacheCap = capacity }
}

// NewServer wraps a trained pipeline.
func NewServer(p *trainer.Pipeline, opts ...Option) (*Server, error) {
	if p == nil {
		return nil, errors.New("serve: nil pipeline")
	}
	return newServer(p, opts...)
}

// NewUnloadedServer builds a Server with no model yet: scoring answers
// 503 and /readyz stays not-ready until the first SetActive — the
// registry-backed deployment path, where a Reloader installs the model
// before the listener opens.
func NewUnloadedServer(opts ...Option) (*Server, error) {
	return newServer(nil, opts...)
}

// newServer builds a Server over any scorer (nil = start unloaded); split
// from NewServer so tests can inject failing pipelines.
func newServer(p scorer, opts ...Option) (*Server, error) {
	s := &Server{
		mux:         http.NewServeMux(),
		reg:         obs.NewRegistry(),
		workers:     runtime.NumCPU(),
		maxBatch:    DefaultMaxBatch,
		shadowEvery: 1,
		maxInFlight: DefaultMaxInFlight,
		maxQueue:    DefaultMaxQueue,
		queueWait:   DefaultQueueWait,
		retryAfter:  DefaultRetryAfter,
		cacheCap:    DefaultCurveCacheCap,
		maxPlanJobs: DefaultMaxPlanJobs,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.gate = newGate(s.maxInFlight, s.maxQueue, s.queueWait, s.retryAfter, s.reg)
	s.cacheMet = newCacheMetrics(s.reg)
	s.initTelemetryMetrics()
	s.initPlanMetrics()

	s.reg.SetHelp("tasq_score_jobs_total", "Jobs scored, by outcome (ok, rejected, failed).")
	s.scoreOK = s.reg.Counter("tasq_score_jobs_total", "outcome", "ok")
	s.scoreRejected = s.reg.Counter("tasq_score_jobs_total", "outcome", "rejected")
	s.scoreFailed = s.reg.Counter("tasq_score_jobs_total", "outcome", "failed")
	s.reg.SetHelp("tasq_score_total", "Successful scores by the predictor that served them.")
	s.reg.SetHelp("tasq_model_version", "Registry version of the loaded model by role (active, shadow); 0 = none/unversioned.")
	s.activeVersion = s.reg.Gauge("tasq_model_version", "role", "active")
	s.shadowVersion = s.reg.Gauge("tasq_model_version", "role", "shadow")

	if p != nil {
		s.setActive(p, 0)
	}

	s.route("/healthz", http.HandlerFunc(s.handleHealth))
	s.route("/readyz", http.HandlerFunc(s.handleReady))
	// Only the scoring endpoints sit behind the admission gate: probes,
	// metrics and admin must keep answering while the service sheds load.
	s.route("/v1/score", s.gated(http.HandlerFunc(s.handleScore)))
	s.route("/v1/score/batch", s.gated(http.HandlerFunc(s.handleScoreBatch)))
	s.route("/v1/plan", s.gated(http.HandlerFunc(s.handlePlan)))
	s.route("/v1/telemetry", s.gated(http.HandlerFunc(s.handleTelemetry)))
	s.route("/v1/models", http.HandlerFunc(s.handleModels))
	s.route("/v1/cluster", http.HandlerFunc(s.handleCluster))
	s.route("/v1/admin/reload", http.HandlerFunc(s.handleAdminReload))
	s.mux.Handle("/metrics", s.reg.Handler())
	return s, nil
}

// SetActive atomically swaps the serving model; in-flight requests finish
// on the generation they started with. The first load also flips the
// server ready.
func (s *Server) SetActive(p *trainer.Pipeline, version int) error {
	if p == nil {
		return errors.New("serve: nil pipeline")
	}
	s.setActive(p, version)
	return nil
}

func (s *Server) setActive(sc scorer, version int) {
	gen := &activeModel{
		scorer:  sc,
		version: version,
		cache:   newCurveCache(s.cacheCap, s.cacheMet),
	}
	first := s.active.Swap(gen) == nil
	// The swapped-out generation's curves are unreachable the moment the
	// store lands; reset the size gauge to the new (empty) cache.
	s.cacheMet.size.Set(0)
	s.activeVersion.Set(int64(version))
	if first {
		s.ready.Store(true)
	}
}

// SetShadow installs a candidate model that a sample of live requests is
// scored against; divergence metrics are labeled with the candidate
// version.
func (s *Server) SetShadow(p *trainer.Pipeline, version int) error {
	if p == nil {
		return errors.New("serve: nil pipeline")
	}
	s.setShadow(p, version)
	return nil
}

func (s *Server) setShadow(sc scorer, version int) {
	cv := fmt.Sprintf("v%d", version)
	s.reg.SetHelp("tasq_shadow_scores_total", "Requests mirrored to the shadow candidate model.")
	s.reg.SetHelp("tasq_shadow_score_failures_total", "Shadow candidate scoring failures (errors or invalid curves).")
	s.reg.SetHelp("tasq_shadow_optimal_disagreement_total", "Shadow scores whose optimal-token recommendation differs from the active model's.")
	s.reg.SetHelp("tasq_shadow_runtime_rel_delta", "Relative |candidate-active| predicted-runtime delta at the request's token cap.")
	s.shadow.Store(&shadowModel{
		scorer:   sc,
		version:  version,
		scores:   s.reg.Counter("tasq_shadow_scores_total", "candidate", cv),
		failures: s.reg.Counter("tasq_shadow_score_failures_total", "candidate", cv),
		disagree: s.reg.Counter("tasq_shadow_optimal_disagreement_total", "candidate", cv),
		delta:    s.reg.Histogram("tasq_shadow_runtime_rel_delta", obs.RelDeltaBuckets, "candidate", cv),
	})
	s.shadowVersion.Set(int64(version))
}

// ClearShadow removes the candidate model (e.g. after promotion).
func (s *Server) ClearShadow() {
	s.shadow.Store(nil)
	s.shadowVersion.Set(0)
}

// ActiveVersion returns the registry version of the serving model (0 =
// none or unversioned).
func (s *Server) ActiveVersion() int {
	if m := s.active.Load(); m != nil {
		return m.version
	}
	return 0
}

// ShadowVersion returns the candidate version being shadow-scored (0 =
// none).
func (s *Server) ShadowVersion() int {
	if m := s.shadow.Load(); m != nil {
		return m.version
	}
	return 0
}

// setReloadFunc wires the admin-reload endpoint to a registry sync; used
// by NewReloader.
func (s *Server) setReloadFunc(fn func() error) { s.reloadFn.Store(&fn) }

// route mounts a handler wrapped with per-route metrics and logging.
func (s *Server) route(pattern string, h http.Handler) {
	s.mux.Handle(pattern, obs.Instrument(s.reg, s.logger, pattern, h))
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetReady flips the /readyz probe; the serving process sets it to false
// when draining so load balancers stop routing new work here while
// in-flight requests complete.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// decodeBody reads and unmarshals a bounded request body into v through a
// pooled buffer (json.Unmarshal copies what it keeps, so recycling the
// raw bytes is safe).
func decodeBody(r *http.Request, v any) error {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if _, err := buf.ReadFrom(io.LimitReader(r.Body, maxBodyBytes)); err != nil {
		return fmt.Errorf("reading request: %w", err)
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req ScoreRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.scoreSingle(&req)
	if err != nil {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
	putScoreResponse(resp)
}

// scoreSingle runs the single-score endpoint's request: the injector's
// score-site faults apply here (batch items draw from their own site so
// the schedules stay independent), then the shared scoring path runs.
func (s *Server) scoreSingle(req *ScoreRequest) (*ScoreResponse, error) {
	if d := s.inj.Latency(); d > 0 {
		time.Sleep(d)
	}
	if err := s.inj.ScoreError(); err != nil {
		s.scoreFailed.Inc()
		return nil, fmt.Errorf("serve: scoring: %w", err)
	}
	return s.score(req)
}

// ScoreLocal scores one request in process, bypassing HTTP — the entry
// point for embedders (and the fleet benchmarks) that colocate the
// caller with a member. The returned response is pooled: call Release
// when done with it and touch nothing afterwards.
func (s *Server) ScoreLocal(req *ScoreRequest) (*ScoreResponse, error) {
	return s.scoreSingle(req)
}

// ModelsResponse lists the predictors the loaded pipeline can serve.
type ModelsResponse struct {
	// ModelVersion is the registry version of the loaded pipeline (0 =
	// unversioned).
	ModelVersion int          `json:"model_version,omitempty"`
	Models       []model.Info `json:"models"`
}

// handleModels reports the loaded pipeline's predictor set: every
// registered name, its kind (trained model vs prior-art baseline), and
// whether this generation actually trained it — the names a ScoreRequest
// may put in its `model` field.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	active := s.active.Load()
	if active == nil {
		http.Error(w, errNoModel.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := ModelsResponse{ModelVersion: active.version, Models: []model.Info{}}
	if ml, ok := active.scorer.(modelLister); ok {
		resp.Models = ml.ModelInfos()
	}
	writeJSON(w, http.StatusOK, resp)
}

// score runs one request through validation, the generation's memoized
// curve cache and — on a miss — the pipeline. All validation failures
// come back as *requestError (HTTP 400); anything the pipeline itself
// gets wrong is internal (HTTP 500).
func (s *Server) score(req *ScoreRequest) (*ScoreResponse, error) {
	if req.Job == nil {
		s.scoreRejected.Inc()
		return nil, reqErrf("serve: request without job")
	}
	if req.Threshold < 0 {
		s.scoreRejected.Inc()
		return nil, reqErrf("serve: negative threshold %v: the §2.1 termination threshold must be positive (0 selects the 0.01 default)", req.Threshold)
	}
	if req.MaxTokens < 0 {
		s.scoreRejected.Inc()
		return nil, reqErrf("serve: negative max_tokens %d: the optimal-token search cap must be positive (0 selects the job's requested tokens)", req.MaxTokens)
	}
	for _, tok := range req.CandidateTokens {
		if tok < 1 {
			s.scoreRejected.Inc()
			return nil, reqErrf("serve: candidate token count %d: token counts start at 1", tok)
		}
	}

	active := s.active.Load()
	if active == nil {
		s.scoreFailed.Inc()
		return nil, errNoModel
	}

	curve, served, servedScores, err := s.curveFor(active, req.Model, req.Job)
	if err != nil {
		// Routing and validation failures (invalid job, unknown name,
		// untrained predictor) are the caller's to fix, not a pipeline
		// malfunction.
		if code := httpStatus(err); code == http.StatusBadRequest || code == http.StatusConflict {
			s.scoreRejected.Inc()
		} else {
			s.scoreFailed.Inc()
		}
		return nil, err
	}

	threshold := req.Threshold
	if threshold == 0 {
		threshold = 0.01
	}
	maxTokens := req.MaxTokens
	if maxTokens == 0 {
		maxTokens = req.Job.RequestedTokens
	}
	if maxTokens <= 0 {
		maxTokens = 1
	}
	resp := getScoreResponse()
	resp.Model = served
	resp.ModelVersion = active.version
	resp.Curve = CurveJSON{A: curve.A, B: curve.B}
	resp.OptimalTokens = curve.OptimalTokens(1, maxTokens, threshold)
	if len(req.CandidateTokens) == 0 {
		// The default ten-point sweep over [1, maxTokens], appended
		// directly into the pooled response; tok is non-decreasing in i,
		// so comparing against the previous point dedupes exactly like
		// defaultCandidates.
		last := 0
		for i := 1; i <= 10; i++ {
			tok := maxTokens * i / 10
			if tok < 1 {
				tok = 1
			}
			if tok != last {
				last = tok
				resp.Predictions = append(resp.Predictions, PointJSON{
					Tokens:         tok,
					RuntimeSeconds: curve.Runtime(float64(tok)),
				})
			}
		}
	} else {
		for _, tok := range req.CandidateTokens {
			resp.Predictions = append(resp.Predictions, PointJSON{
				Tokens:         tok,
				RuntimeSeconds: curve.Runtime(float64(tok)),
			})
		}
	}
	s.scoreOK.Inc()
	servedScores.Inc()
	s.shadowScore(req, curve, resp.OptimalTokens, maxTokens, threshold)
	return resp, nil
}

// curveFor resolves the predicted PCC for one (model, job) pair through
// the generation's memoized curve cache, falling back to the pipeline on
// a miss — the resolution path /v1/score and /v1/plan share. A cache hit
// skips both the predictor and Job.Validate: entries are only stored for
// jobs that passed validation, and the exact key covers every field
// Validate constrains, so a job that would fail validation can never
// match a stored key. The caller classifies errors via httpStatus and
// owns its own outcome counters; the returned per-model counter is the
// tasq_score_total series for the predictor that served the curve.
func (s *Server) curveFor(active *activeModel, modelName string, job *scopesim.Job) (pcc.Curve, string, *obs.Counter, error) {
	var kb *keyBuf
	if active.cache != nil {
		kb = getKeyBuf()
		defer putKeyBuf(kb)
		appendScoreKey(kb, modelName, job)
		if e, hit := active.cache.get(kb.b); hit {
			return e.curve, e.model, e.counter, nil
		}
	}
	if err := job.Validate(); err != nil {
		return pcc.Curve{}, "", nil, reqErrf("serve: invalid job: %w", err)
	}
	curve, served, err := scoreViaName(active.scorer, modelName, job)
	if err != nil {
		return pcc.Curve{}, "", nil, fmt.Errorf("serve: scoring: %w", err)
	}
	if !curve.Valid() {
		return pcc.Curve{}, "", nil, fmt.Errorf("serve: scoring: model %s produced invalid curve %v", served, curve)
	}
	servedScores := s.reg.Counter("tasq_score_total", "model", served)
	if active.cache != nil {
		active.cache.put(kb.b, cachedScore{curve: curve, model: served, counter: servedScores})
	}
	return curve, served, servedScores, nil
}

// shadowScore mirrors a sampled request into the candidate model and
// records the divergence between the two generations: the relative
// predicted-runtime delta at the request's token cap and whether the
// optimal-token recommendations disagree. Promotion is judged from these
// series on /metrics.
func (s *Server) shadowScore(req *ScoreRequest, activeCurve pcc.Curve, activeOpt, maxTokens int, threshold float64) {
	sh := s.shadow.Load()
	if sh == nil || s.shadowEvery <= 0 {
		return
	}
	if (s.shadowSeq.Add(1)-1)%s.shadowEvery != 0 {
		return
	}
	sh.scores.Inc()
	// Route exactly as the active model did — a requested model name
	// applies to both generations, so the divergence series compares
	// like with like.
	curve, _, err := scoreVia(sh.scorer, req)
	if err != nil || !curve.Valid() {
		sh.failures.Inc()
		return
	}
	if curve.OptimalTokens(1, maxTokens, threshold) != activeOpt {
		sh.disagree.Inc()
	}
	activeRT := activeCurve.Runtime(float64(maxTokens))
	if activeRT > 0 {
		sh.delta.Observe(math.Abs(curve.Runtime(float64(maxTokens))-activeRT) / activeRT)
	}
}

// defaultCandidates spreads ten deduplicated points over [1, max]; tok is
// non-decreasing in i, so deduping against the previous point suffices.
// The scoring hot path inlines this loop to append into the pooled
// response; this form backs tests and other callers.
func defaultCandidates(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	last := 0
	for i := 1; i <= 10; i++ {
		tok := max * i / 10
		if tok < 1 {
			tok = 1
		}
		if tok != last {
			last = tok
			out = append(out, tok)
		}
	}
	return out
}

// writeJSON encodes v through a pooled buffer, then writes it in one
// call; the buffer doubles as the Content-Length source.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, "serve: encoding response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// Client calls a TASQ scoring service.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	// Retry, when set, retries transient failures (429/5xx, transport
	// errors on idempotent calls) with capped, deterministically jittered
	// backoff honoring the service's Retry-After hints. Nil (the default)
	// keeps the historical single-attempt behaviour. Batch scoring is
	// retried only when the whole request was shed before execution —
	// partial batches are never blindly resubmitted.
	Retry *RetryPolicy
	// Breaker, when set, short-circuits attempts with ErrCircuitOpen
	// while the service is failing outright (consecutive transport
	// errors / 5xx), probing again after its cooldown.
	Breaker *Breaker
	// OnAttempt, when set, observes every HTTP attempt this client makes
	// (retries included): the wire status (0 = transport error, response
	// never arrived) and the attempt's error, if any. Chaos tests use it
	// to reconcile client-side attempts against server-side counters.
	OnAttempt func(method, path string, status int, err error)

	// sleep overrides the inter-attempt pause in tests.
	sleep func(time.Duration)
}

// NewClient builds a client with a sane default timeout and no retry
// (set Retry/Breaker to opt into resilience).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// doOnce issues one request with the caller's context, returning the
// bounded body and converting non-200 statuses into *StatusError. The
// retry loop in do wraps this; nothing else calls it.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{
			Code:       resp.StatusCode,
			Message:    string(bytes.TrimSpace(body)),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return body, nil
}

// postJSON marshals req, posts it to path and decodes the response into
// out.
func (c *Client) postJSON(ctx context.Context, path string, kind retryKind, req, out any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	body, err := c.do(ctx, http.MethodPost, path, payload, kind)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}

// Health checks the service liveness endpoint.
func (c *Client) Health() error { return c.HealthCtx(context.Background()) }

// HealthCtx is Health honoring the caller's deadline and cancellation.
func (c *Client) HealthCtx(ctx context.Context) error {
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, retryNone); err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			return fmt.Errorf("serve: health status %d", se.Code)
		}
		return err
	}
	return nil
}

// Ready checks the service readiness endpoint; a draining or overloaded
// service returns a *StatusError carrying the status code.
func (c *Client) Ready() error { return c.ReadyCtx(context.Background()) }

// ReadyCtx is Ready honoring the caller's deadline and cancellation.
func (c *Client) ReadyCtx(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/readyz", nil, retryNone)
	return err
}

// Metrics fetches the Prometheus text exposition of the service.
func (c *Client) Metrics() (string, error) { return c.MetricsCtx(context.Background()) }

// MetricsCtx is Metrics honoring the caller's deadline and cancellation.
func (c *Client) MetricsCtx(ctx context.Context) (string, error) {
	body, err := c.do(ctx, http.MethodGet, "/metrics", nil, retryIdempotent)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Score submits a job for PCC prediction.
func (c *Client) Score(req *ScoreRequest) (*ScoreResponse, error) {
	return c.ScoreCtx(context.Background(), req)
}

// ScoreCtx is Score honoring the caller's deadline and cancellation.
func (c *Client) ScoreCtx(ctx context.Context, req *ScoreRequest) (*ScoreResponse, error) {
	var out ScoreResponse
	// Scoring is a pure function of the request — idempotent, so
	// transient failures (including transport errors) are retried.
	if err := c.postJSON(ctx, "/v1/score", retryIdempotent, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Models lists the predictors the service can score with.
func (c *Client) Models() (*ModelsResponse, error) {
	return c.ModelsCtx(context.Background())
}

// ModelsCtx is Models honoring the caller's deadline and cancellation.
func (c *Client) ModelsCtx(ctx context.Context) (*ModelsResponse, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/models", nil, retryIdempotent)
	if err != nil {
		return nil, err
	}
	var out ModelsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("serve: decoding response: %w", err)
	}
	return &out, nil
}

// Curve converts the response curve back to a pcc.Curve.
func (r *ScoreResponse) CurveValue() pcc.Curve {
	return pcc.Curve{A: r.Curve.A, B: r.Curve.B}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}
