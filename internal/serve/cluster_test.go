package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakePicker is a deterministic MemberPicker: the owner of a key is
// members[KeyHash-like(key) % len] over the sorted member list, and the
// sequence proceeds in that order. Tests use it to control routing
// without importing internal/cluster (which imports this package).
type fakePicker struct {
	mu      sync.Mutex
	members []string
}

func (p *fakePicker) Add(m string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.members {
		if e == m {
			return
		}
	}
	p.members = append(p.members, m)
	// Keep deterministic order regardless of add/remove history.
	for i := 1; i < len(p.members); i++ {
		for j := i; j > 0 && p.members[j] < p.members[j-1]; j-- {
			p.members[j], p.members[j-1] = p.members[j-1], p.members[j]
		}
	}
}

func (p *fakePicker) Remove(m string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.members[:0]
	for _, e := range p.members {
		if e != m {
			kept = append(kept, e)
		}
	}
	p.members = kept
}

func (p *fakePicker) Sequence(key []byte, n int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.members) == 0 {
		return nil
	}
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	if n <= 0 || n > len(p.members) {
		n = len(p.members)
	}
	start := int(h % uint64(len(p.members)))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.members[(start+i)%len(p.members)])
	}
	return out
}

// clusterFixture boots n replicas of the same trained pipeline behind a
// ClusterClient with tight breakers (threshold 2, 10ms cooldown) so
// ejection tests run fast.
func clusterFixture(t *testing.T, n int) (*ClusterClient, []*httptest.Server, *fakePicker) {
	t.Helper()
	p, _ := trainedCachePipeline(t)
	picker := &fakePicker{}
	cc := NewClusterClient(picker)
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		_, ts := pipelineServer(t, p)
		servers = append(servers, ts)
		c := NewClient(ts.URL)
		c.Breaker = NewBreaker(2, 10*time.Millisecond)
		if err := cc.AddMember(memberID(i), c); err != nil {
			t.Fatal(err)
		}
	}
	return cc, servers, picker
}

func memberID(i int) string { return string(rune('a'+i)) + "-replica" }

// TestClusterRoutingAffinity pins cache-affine routing: the same job
// always lands on the same member, and with several jobs in play more
// than one member serves traffic.
func TestClusterRoutingAffinity(t *testing.T) {
	_, recs := trainedCachePipeline(t)
	cc, _, _ := clusterFixture(t, 3)

	// Same job, many calls: exactly one member serves them all.
	for i := 0; i < 6; i++ {
		if _, err := cc.Score(&ScoreRequest{Job: recs[0].Job}); err != nil {
			t.Fatal(err)
		}
	}
	st := cc.Stats()
	if len(st.Routed) != 1 {
		t.Fatalf("one job spread over %d members: %v", len(st.Routed), st.Routed)
	}
	if st.Failovers != 0 {
		t.Fatalf("healthy fleet recorded %d failovers", st.Failovers)
	}

	// Many jobs: the keyspace spreads.
	for _, rec := range recs {
		if _, err := cc.Score(&ScoreRequest{Job: rec.Job}); err != nil {
			t.Fatal(err)
		}
	}
	if st := cc.Stats(); len(st.Routed) < 2 {
		t.Fatalf("30 jobs all routed to one member: %v", st.Routed)
	}
}

// TestClusterFailoverEjectionReadmission is the health-gate life cycle:
// a dead member's requests fail over to the next ring member; its
// breaker opens and ejects it; a probe against its restarted incarnation
// re-admits it.
func TestClusterFailoverEjectionReadmission(t *testing.T) {
	p, recs := trainedCachePipeline(t)
	cc, servers, _ := clusterFixture(t, 2)
	var events []string
	var evMu sync.Mutex
	cc.OnEvent = func(event, member string) {
		evMu.Lock()
		events = append(events, event+":"+member)
		evMu.Unlock()
	}

	// Find a job owned by member a-replica so killing it forces failover.
	victim := memberID(0)
	var job = recs[0].Job
	found := false
	for _, rec := range recs {
		if seq := cc.sequenceFor("", rec.Job); seq[0] == victim {
			job, found = rec.Job, true
			break
		}
	}
	if !found {
		t.Fatal("no job routed to the victim member")
	}

	servers[0].Close() // the process dies; connections now refuse

	// Scores keep succeeding via failover, and within a few requests the
	// victim's breaker (threshold 2) opens and ejects it.
	for i := 0; i < 4; i++ {
		if _, err := cc.Score(&ScoreRequest{Job: job}); err != nil {
			t.Fatalf("score %d during member death: %v", i, err)
		}
	}
	if got := cc.HealthyMembers(); !reflect.DeepEqual(got, []string{memberID(1)}) {
		t.Fatalf("healthy members after death = %v", got)
	}
	st := cc.Stats()
	if st.Ejections != 1 || st.Failovers == 0 {
		t.Fatalf("stats after death: %+v", st)
	}

	// While ejected, its requests go straight to the survivor — no errors.
	if _, err := cc.Score(&ScoreRequest{Job: job}); err != nil {
		t.Fatalf("score while ejected: %v", err)
	}

	// Restart: fresh server, same registry-of-one pipeline, new URL.
	_, ts2 := pipelineServer(t, p)
	c2 := NewClient(ts2.URL)
	c2.Breaker = cc.MemberClient(victim).Breaker // breaker state survives restart
	if err := cc.SetMemberClient(victim, c2); err != nil {
		t.Fatal(err)
	}
	// Probe until the breaker cooldown (10ms) lets the half-open probe
	// through and /readyz passes.
	deadline := time.Now().Add(2 * time.Second)
	for len(cc.HealthyMembers()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("member never re-admitted")
		}
		cc.Probe(context.Background())
		time.Sleep(2 * time.Millisecond)
	}
	if st := cc.Stats(); st.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", st.Readmissions)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if !reflect.DeepEqual(events, []string{"eject:" + victim, "readmit:" + victim}) {
		t.Fatalf("events = %v", events)
	}
}

// TestClusterOverloadIsNotDown pins the backpressure contract: a member
// answering 429 stays in the ring and its 429 surfaces to the caller
// instead of spilling onto another shard.
func TestClusterOverloadIsNotDown(t *testing.T) {
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "serve: overloaded: queue full", http.StatusTooManyRequests)
	}))
	defer overloaded.Close()

	picker := &fakePicker{}
	cc := NewClusterClient(picker)
	if err := cc.AddMember("only", NewClient(overloaded.URL)); err != nil {
		t.Fatal(err)
	}
	_, err := cc.Score(&ScoreRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded member: %v, want 429", err)
	}
	if got := cc.HealthyMembers(); len(got) != 1 {
		t.Fatalf("429 ejected the member: healthy = %v", got)
	}
}

// TestClusterBatchScatterGather pins the scatter-gather contract: items
// come back in input order with the envelope counts intact, equal to
// what a single server answers, and the sub-batches spread across
// members.
func TestClusterBatchScatterGather(t *testing.T) {
	p, recs := trainedCachePipeline(t)
	cc, _, _ := clusterFixture(t, 3)
	_, soloTS := pipelineServer(t, p)
	solo := NewClient(soloTS.URL)

	req := &BatchScoreRequest{}
	for i := 0; i < 12; i++ {
		item := ScoreRequest{Job: recs[i%len(recs)].Job}
		if i == 5 {
			item.Job = nil // item-level 400
		}
		if i == 9 {
			item.Model = "nn" // skipped in training: item-level 409
		}
		req.Items = append(req.Items, item)
	}
	got, err := cc.ScoreBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.ScoreBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Succeeded != want.Succeeded || got.Failed != want.Failed {
		t.Fatalf("envelope %d/%d, single server says %d/%d", got.Succeeded, got.Failed, want.Succeeded, want.Failed)
	}
	if len(got.Results) != len(req.Items) {
		t.Fatalf("%d results for %d items", len(got.Results), len(req.Items))
	}
	for i, r := range got.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Status != want.Results[i].Status {
			t.Fatalf("item %d status %d, single server says %d", i, r.Status, want.Results[i].Status)
		}
		if r.Status == http.StatusOK && !reflect.DeepEqual(r.Response, want.Results[i].Response) {
			t.Fatalf("item %d response differs from single server", i)
		}
	}
	if st := cc.Stats(); len(st.Routed) < 2 {
		t.Fatalf("batch never spread: %v", st.Routed)
	}
}

// TestClusterNoMembers: an empty (or fully ejected) balancer answers
// ErrNoMembers rather than hanging or panicking.
func TestClusterNoMembers(t *testing.T) {
	cc := NewClusterClient(&fakePicker{})
	if _, err := cc.Score(&ScoreRequest{}); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("Score on empty cluster: %v", err)
	}
	if _, err := cc.ScoreBatch(&BatchScoreRequest{Items: []ScoreRequest{{}}}); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("ScoreBatch on empty cluster: %v", err)
	}
	if got := cc.Probe(context.Background()); got != nil {
		t.Fatalf("Probe on empty cluster readmitted %v", got)
	}
}

// TestClusterMemberAdmin covers the membership API edges: duplicate add,
// unknown SetMemberClient, remove, nil clients, default breakers.
func TestClusterMemberAdmin(t *testing.T) {
	cc := NewClusterClient(&fakePicker{})
	c := NewClient("http://localhost:0")
	if err := cc.AddMember("m0", c); err != nil {
		t.Fatal(err)
	}
	if c.Breaker == nil {
		t.Fatal("AddMember left the client without a breaker")
	}
	if err := cc.AddMember("m0", NewClient("http://localhost:0")); err == nil {
		t.Fatal("duplicate AddMember accepted")
	}
	if err := cc.AddMember("m1", nil); err == nil {
		t.Fatal("nil client accepted")
	}
	if err := cc.SetMemberClient("ghost", NewClient("http://localhost:0")); err == nil {
		t.Fatal("SetMemberClient on unknown member accepted")
	}
	if err := cc.SetMemberClient("m0", nil); err == nil {
		t.Fatal("SetMemberClient with nil client accepted")
	}
	if got := cc.Members(); !reflect.DeepEqual(got, []string{"m0"}) {
		t.Fatalf("Members = %v", got)
	}
	cc.RemoveMember("m0")
	cc.RemoveMember("ghost") // no-op
	if got := cc.Members(); len(got) != 0 {
		t.Fatalf("Members after remove = %v", got)
	}
	if cc.MemberClient("m0") != nil {
		t.Fatal("MemberClient after remove")
	}
}

// TestMemberDownClassification pins the down-vs-overload split the
// balancer routes by.
func TestMemberDownClassification(t *testing.T) {
	cases := []struct {
		err  error
		down bool
	}{
		{nil, false},
		{ErrCircuitOpen, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&StatusError{Code: http.StatusServiceUnavailable}, true},
		{&StatusError{Code: http.StatusBadGateway}, true},
		{&StatusError{Code: http.StatusTooManyRequests}, false},
		{&StatusError{Code: http.StatusGatewayTimeout}, false},
		{&StatusError{Code: http.StatusBadRequest}, false},
		{&StatusError{Code: http.StatusInternalServerError}, false},
		{errors.New("dial tcp: connection reset"), true},
	}
	for _, c := range cases {
		if got := memberDown(c.err); got != c.down {
			t.Errorf("memberDown(%v) = %v, want %v", c.err, got, c.down)
		}
	}
	// Batch failover is stricter: transport errors don't qualify unless
	// provably refused before send.
	if batchFailover(errors.New("connection reset mid-body")) {
		t.Error("batch failover on an ambiguous transport error")
	}
	if !batchFailover(syscall.ECONNREFUSED) {
		t.Error("no batch failover on a refused connection")
	}
	if !batchFailover(&StatusError{Code: http.StatusServiceUnavailable}) {
		t.Error("no batch failover on 503")
	}
	if batchFailover(&StatusError{Code: http.StatusTooManyRequests}) {
		t.Error("batch failover on 429 backpressure")
	}
}
