// Package jobrepo is the historical job repository of the TASQ pipeline
// (Figure 4): it stores each job's compile-time graph and metadata together
// with the telemetry of its production run — requested tokens, run time and
// resource skyline — and supports the constrained queries the flighting
// job-selection procedure needs (virtual cluster, token range, time frame).
// Records persist as JSON Lines, this reproduction's stand-in for Azure
// Data Lake Storage.
package jobrepo

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"tasq/internal/parallel"
	"tasq/internal/scopesim"
	"tasq/internal/skyline"
)

// Record pairs a job with the telemetry of its observed production run.
type Record struct {
	Job *scopesim.Job `json:"job"`
	// ObservedTokens is the allocation the job actually ran with.
	ObservedTokens int `json:"observed_tokens"`
	// RuntimeSeconds is the observed run time.
	RuntimeSeconds int `json:"runtime_seconds"`
	// Skyline is the observed per-second token usage.
	Skyline skyline.Skyline `json:"skyline"`
}

// Validate checks the record's internal consistency.
func (r *Record) Validate() error {
	if r.Job == nil {
		return errors.New("jobrepo: record without job")
	}
	if err := r.Job.Validate(); err != nil {
		return err
	}
	if r.ObservedTokens < 1 {
		return fmt.Errorf("jobrepo: job %s observed tokens %d", r.Job.ID, r.ObservedTokens)
	}
	if r.RuntimeSeconds != r.Skyline.Runtime() {
		return fmt.Errorf("jobrepo: job %s runtime %d != skyline length %d",
			r.Job.ID, r.RuntimeSeconds, r.Skyline.Runtime())
	}
	return r.Skyline.Validate()
}

// Repository is an in-memory store of records with ID lookup.
type Repository struct {
	records []*Record
	byID    map[string]*Record
}

// New returns an empty repository.
func New() *Repository {
	return &Repository{byID: make(map[string]*Record)}
}

// Add validates and stores a record; duplicate job IDs are rejected.
func (r *Repository) Add(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if _, dup := r.byID[rec.Job.ID]; dup {
		return fmt.Errorf("jobrepo: duplicate job ID %s", rec.Job.ID)
	}
	r.records = append(r.records, rec)
	r.byID[rec.Job.ID] = rec
	return nil
}

// Len returns the record count.
func (r *Repository) Len() int { return len(r.records) }

// All returns the records in insertion order. The returned slice is the
// caller's to reorder or filter — it never aliases the repository's
// backing array. (Query already returns a fresh slice.)
func (r *Repository) All() []*Record {
	out := make([]*Record, len(r.records))
	copy(out, r.records)
	return out
}

// Get returns the record for a job ID, or nil.
func (r *Repository) Get(id string) *Record { return r.byID[id] }

// Filter restricts a Query; zero fields are ignored.
type Filter struct {
	VirtualCluster string
	MinTokens      int       // observed tokens ≥
	MaxTokens      int       // observed tokens ≤ (0 = unbounded)
	From, To       time.Time // submit time in [From, To)
	RecurringOnly  bool      // only jobs with a template
}

// Query returns the records matching the filter, in insertion order.
func (r *Repository) Query(f Filter) []*Record {
	var out []*Record
	for _, rec := range r.records {
		j := rec.Job
		if f.VirtualCluster != "" && j.VirtualCluster != f.VirtualCluster {
			continue
		}
		if f.MinTokens > 0 && rec.ObservedTokens < f.MinTokens {
			continue
		}
		if f.MaxTokens > 0 && rec.ObservedTokens > f.MaxTokens {
			continue
		}
		if !f.From.IsZero() && j.SubmitTime.Before(f.From) {
			continue
		}
		if !f.To.IsZero() && !j.SubmitTime.Before(f.To) {
			continue
		}
		if f.RecurringOnly && j.Template == "" {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// Ingest executes each job at its requested token count on the executor
// and stores the resulting telemetry — the transformation step of the TASQ
// training pipeline that turns raw jobs into model-ready records.
func (r *Repository) Ingest(jobs []*scopesim.Job, ex *scopesim.Executor) error {
	return r.IngestParallel(jobs, ex, 1)
}

// IngestParallel is Ingest with the executions fanned out over workers
// goroutines (the Executor is stateless, so concurrent Run calls are safe).
// Records are stored in job order and the result is identical to Ingest at
// any worker count; workers ≤ 0 means runtime.NumCPU, 1 the serial path.
func (r *Repository) IngestParallel(jobs []*scopesim.Job, ex *scopesim.Executor, workers int) error {
	recs, err := parallel.Map(context.Background(), len(jobs), workers, func(i int) (*Record, error) {
		j := jobs[i]
		res, err := ex.Run(j, j.RequestedTokens)
		if err != nil {
			return nil, fmt.Errorf("jobrepo: ingesting %s: %w", j.ID, err)
		}
		return &Record{
			Job:            j,
			ObservedTokens: j.RequestedTokens,
			RuntimeSeconds: res.RuntimeSeconds,
			Skyline:        res.Skyline,
		}, nil
	})
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := r.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL streams the repository as JSON Lines.
func (r *Repository) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.records {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("jobrepo: encoding %s: %w", rec.Job.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a repository from JSON Lines, validating every record.
func ReadJSONL(rd io.Reader) (*Repository, error) {
	repo := New()
	dec := json.NewDecoder(bufio.NewReader(rd))
	for line := 1; ; line++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return repo, nil
			}
			return nil, fmt.Errorf("jobrepo: record %d: %w", line, err)
		}
		if err := repo.Add(&rec); err != nil {
			return nil, fmt.Errorf("jobrepo: record %d: %w", line, err)
		}
	}
}

// SaveFile writes the repository to path, creating or truncating it.
func (r *Repository) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return r.WriteJSONL(f)
}

// LoadFile reads a repository from path.
func LoadFile(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
