package jobrepo

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tasq/internal/scopesim"
	"tasq/internal/skyline"
	"tasq/internal/workload"
)

func ingested(t *testing.T, n int, seed int64) *Repository {
	t.Helper()
	g := workload.New(workload.TestConfig(seed))
	repo := New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(n), &ex); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestIngestAndLookup(t *testing.T) {
	repo := ingested(t, 25, 1)
	if repo.Len() != 25 {
		t.Fatalf("len = %d, want 25", repo.Len())
	}
	first := repo.All()[0]
	if got := repo.Get(first.Job.ID); got != first {
		t.Fatal("Get by ID failed")
	}
	if repo.Get("nope") != nil {
		t.Fatal("unknown ID must return nil")
	}
	for _, rec := range repo.All() {
		if rec.RuntimeSeconds != rec.Skyline.Runtime() {
			t.Fatal("runtime/skyline mismatch")
		}
		if rec.Skyline.Peak() > rec.ObservedTokens {
			t.Fatalf("job %s used %d tokens with %d allocated", rec.Job.ID, rec.Skyline.Peak(), rec.ObservedTokens)
		}
	}
}

// TestAllReturnsCopy pins the aliasing contract: reordering or nilling
// the slice returned by All (or Query) must not corrupt the repository's
// insertion order — model training sorts and shuffles these slices
// freely.
func TestAllReturnsCopy(t *testing.T) {
	repo := ingested(t, 10, 3)
	order := make([]string, repo.Len())
	for i, rec := range repo.All() {
		order[i] = rec.Job.ID
	}

	stolen := repo.All()
	for i, j := 0, len(stolen)-1; i < j; i, j = i+1, j-1 {
		stolen[i], stolen[j] = stolen[j], stolen[i]
	}
	stolen[0] = nil

	for i, rec := range repo.All() {
		if rec == nil || rec.Job.ID != order[i] {
			t.Fatalf("record %d changed after caller mutated All() result", i)
		}
	}

	q := repo.Query(Filter{})
	if len(q) != repo.Len() {
		t.Fatalf("empty filter returned %d of %d", len(q), repo.Len())
	}
	q[0] = nil
	if repo.All()[0] == nil || repo.All()[0].Job.ID != order[0] {
		t.Fatal("mutating a Query result corrupted the repository")
	}
}

func TestAddValidation(t *testing.T) {
	repo := New()
	if err := repo.Add(&Record{}); err == nil {
		t.Fatal("record without job accepted")
	}
	g := workload.New(workload.TestConfig(2))
	j := g.Job()
	var ex scopesim.Executor
	res, err := ex.Run(j, j.RequestedTokens)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Job: j, ObservedTokens: j.RequestedTokens, RuntimeSeconds: res.RuntimeSeconds, Skyline: res.Skyline}
	if err := repo.Add(rec); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(rec); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate accepted: %v", err)
	}
	bad := &Record{Job: j, ObservedTokens: 0, RuntimeSeconds: res.RuntimeSeconds, Skyline: res.Skyline}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero tokens accepted")
	}
	mismatch := &Record{Job: j, ObservedTokens: 5, RuntimeSeconds: 99999, Skyline: res.Skyline}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("runtime mismatch accepted")
	}
	negative := &Record{Job: j, ObservedTokens: 5, RuntimeSeconds: 1, Skyline: skyline.Skyline{-1}}
	if err := negative.Validate(); err == nil {
		t.Fatal("negative skyline accepted")
	}
}

func TestQueryFilters(t *testing.T) {
	repo := ingested(t, 80, 3)
	all := repo.All()

	// Virtual cluster.
	vc := all[0].Job.VirtualCluster
	for _, rec := range repo.Query(Filter{VirtualCluster: vc}) {
		if rec.Job.VirtualCluster != vc {
			t.Fatal("VC filter leaked")
		}
	}

	// Token range.
	got := repo.Query(Filter{MinTokens: 100, MaxTokens: 300})
	for _, rec := range got {
		if rec.ObservedTokens < 100 || rec.ObservedTokens > 300 {
			t.Fatalf("token filter leaked: %d", rec.ObservedTokens)
		}
	}

	// Time frame.
	mid := all[40].Job.SubmitTime
	before := repo.Query(Filter{To: mid})
	after := repo.Query(Filter{From: mid})
	if len(before)+len(after) != len(all) {
		t.Fatalf("time partition %d + %d != %d", len(before), len(after), len(all))
	}
	for _, rec := range before {
		if !rec.Job.SubmitTime.Before(mid) {
			t.Fatal("To filter leaked")
		}
	}

	// Recurring only.
	for _, rec := range repo.Query(Filter{RecurringOnly: true}) {
		if rec.Job.Template == "" {
			t.Fatal("recurring filter leaked ad-hoc job")
		}
	}

	// Combined filter is an intersection.
	combined := repo.Query(Filter{VirtualCluster: vc, RecurringOnly: true, From: time.Time{}})
	for _, rec := range combined {
		if rec.Job.VirtualCluster != vc || rec.Job.Template == "" {
			t.Fatal("combined filter leaked")
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	repo := ingested(t, 15, 4)
	var buf bytes.Buffer
	if err := repo.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), repo.Len())
	}
	for i, want := range repo.All() {
		got := loaded.All()[i]
		if got.Job.ID != want.Job.ID ||
			got.ObservedTokens != want.ObservedTokens ||
			got.RuntimeSeconds != want.RuntimeSeconds ||
			got.Skyline.Area() != want.Skyline.Area() ||
			got.Job.NumOperators() != want.Job.NumOperators() {
			t.Fatalf("record %d mismatch after round trip", i)
		}
		if !got.Job.SubmitTime.Equal(want.Job.SubmitTime) {
			t.Fatalf("record %d submit time mismatch", i)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"job":null}` + "\n")); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	repo := ingested(t, 10, 5)
	path := filepath.Join(t.TempDir(), "repo.jsonl")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 10 {
		t.Fatalf("loaded %d", loaded.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestIngestPropagatesExecutorError(t *testing.T) {
	repo := New()
	bad := &scopesim.Job{ID: "bad", RequestedTokens: 0}
	ex := &scopesim.Executor{}
	if err := repo.Ingest([]*scopesim.Job{bad}, ex); err == nil {
		t.Fatal("executor error swallowed")
	}
}
