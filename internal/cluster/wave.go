package cluster

import (
	"fmt"

	"tasq/internal/autopilot"
	"tasq/internal/registry"
)

// Syncer is what a promotion wave needs from a fleet member: a name and
// one explicit registry reconciliation. *Replica implements it.
type Syncer interface {
	ID() string
	Sync() error
}

// WaveConfig parameterizes a rolling promotion.
type WaveConfig struct {
	// Machine configures the promote/reject/guard decisions; zero fields
	// take autopilot defaults.
	Machine autopilot.MachineConfig
	// OnEvent (optional) receives one call per wave step: "canary",
	// "promote", "reject", "adopt", "skip", "guard-pass", "rollback".
	// detail is the member ID for adopt/skip, the version otherwise.
	OnEvent func(event, detail string)
}

// WaveResult reports how a wave ended.
type WaveResult struct {
	Candidate int
	// Previous is the generation that was active fleet-wide before the
	// wave — the rollback target.
	Previous int
	// Outcome is the wave's final registry.WaveState* value.
	Outcome string
	// Samples and GuardSamples count the paired comparison and guardrail
	// observations folded.
	Samples      int
	GuardSamples int
	// Adopted and Skipped list member IDs: who synced onto the candidate
	// during the promoting pass and who could not (down at the time —
	// they adopt on restart, because the pin is registry state).
	Adopted []string
	Skipped []string
}

// Promoted reports whether the candidate ended up serving fleet-wide.
func (r *WaveResult) Promoted() bool { return r.Outcome == registry.WaveStateComplete }

// RunWave rolls a candidate version through a fleet, reusing the
// autopilot promotion state machine for every decision:
//
//  1. Freeze: the current active generation is pinned, so no replica
//     drifts onto the candidate by mere Sync.
//  2. Canary: members[0] syncs; under the pin the candidate loads as its
//     shadow, and observe feeds paired (candidate, active) error samples
//     into the machine until it promotes or rejects — exactly at the
//     PromoteMinN-th sample.
//  3. Promote: the pin moves to the candidate, a promotion record names
//     the rollback target, and members sync in order, canary first; each
//     adoption is annotated on the candidate's manifest. Members that are
//     down get skipped — the pin guarantees they adopt when they restart.
//  4. Guard: guard feeds post-promotion error samples; a spike re-pins
//     the previous generation and resyncs the fleet, a clean window
//     annotates the wave complete.
//
// A rejected candidate leaves the fleet pinned to the previous
// generation — frozen deliberately, since the registry's latest version
// is now known-bad; the next wave (or an operator Unpin) moves it.
//
// observe(n) and guard(n) are the wave's error oracles, indexed by
// observation number so deterministic tests can script them.
func RunWave(reg *registry.Registry, members []Syncer, candidate int,
	observe func(n int) (candErr, activeErr float64),
	guard func(n int) float64,
	cfg WaveConfig) (*WaveResult, error) {

	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: wave over an empty fleet")
	}
	if observe == nil || guard == nil {
		return nil, fmt.Errorf("cluster: wave needs observe and guard oracles")
	}
	event := cfg.OnEvent
	if event == nil {
		event = func(string, string) {}
	}

	previous, err := previousVersion(reg, candidate)
	if err != nil {
		return nil, err
	}
	res := &WaveResult{Candidate: candidate, Previous: previous}

	// Freeze the fleet on the previous generation, then shadow the
	// candidate on the canary only.
	if err := reg.Pin(previous); err != nil {
		return nil, err
	}
	canary := members[0]
	if err := reg.SetWaveState(candidate, registry.WaveStateCanary, canary.ID()); err != nil {
		return nil, err
	}
	if err := canary.Sync(); err != nil {
		return nil, fmt.Errorf("cluster: canary %s: %w", canary.ID(), err)
	}
	event("canary", canary.ID())

	m := autopilot.NewMachine(cfg.Machine)
	m.StartCandidate(candidate)

	// The machine decides at exactly the PromoteMinN-th non-NaN sample;
	// the bound only guards against an oracle that returns NaN forever.
	decision := autopilot.ActionNone
	maxSamples := 4 * m.Config().PromoteMinN
	for n := 0; decision == autopilot.ActionNone; n++ {
		if n >= maxSamples {
			return nil, fmt.Errorf("cluster: wave undecided after %d samples", n)
		}
		decision = m.ObserveCandidate(observe(n))
		res.Samples = n + 1
	}

	if decision == autopilot.ActionReject {
		res.Outcome = registry.WaveStateRejected
		event("reject", fmt.Sprintf("v%d", candidate))
		return res, reg.SetWaveState(candidate, registry.WaveStateRejected, "")
	}

	// Promote: record the rollback target first, then move the pin — a
	// crash between the two leaves an accurate promotion record and an
	// old pin, which is merely a not-yet-promoted fleet.
	rec := registry.PromotionRecord{
		Version:      candidate,
		Previous:     previous,
		PromotedAtN:  int64(m.SampleN()),
		CandidateErr: m.CandidateMean(),
		ActiveErr:    m.ActiveMean(),
	}
	if err := reg.SetPromotion(rec); err != nil {
		return nil, err
	}
	if err := reg.Pin(candidate); err != nil {
		return nil, err
	}
	if err := reg.SetWaveState(candidate, registry.WaveStatePromoting, ""); err != nil {
		return nil, err
	}
	event("promote", fmt.Sprintf("v%d", candidate))

	// Wave through the fleet in order, canary first (members[0]).
	for _, mem := range members {
		if err := mem.Sync(); err != nil {
			res.Skipped = append(res.Skipped, mem.ID())
			event("skip", mem.ID())
			continue
		}
		if err := reg.MarkWaveAdopted(candidate, mem.ID()); err != nil {
			return nil, err
		}
		res.Adopted = append(res.Adopted, mem.ID())
		event("adopt", mem.ID())
	}

	// Guardrail watch on the promoted generation.
	verdict := autopilot.ActionNone
	maxGuard := 4 * m.Config().GuardrailWindow
	for n := 0; verdict == autopilot.ActionNone; n++ {
		if n >= maxGuard {
			return nil, fmt.Errorf("cluster: guardrail undecided after %d samples", n)
		}
		verdict = m.ObserveGuard(guard(n))
		res.GuardSamples = n + 1
	}

	if verdict == autopilot.ActionRollback {
		res.Outcome = registry.WaveStateRolledBack
		rec.RolledBack = true
		rec.RolledBackAtN = int64(res.GuardSamples)
		if err := reg.SetPromotion(rec); err != nil {
			return nil, err
		}
		if err := reg.Pin(previous); err != nil {
			return nil, err
		}
		if err := reg.SetWaveState(candidate, registry.WaveStateRolledBack, ""); err != nil {
			return nil, err
		}
		// Re-sync survivors back onto the previous generation; members
		// already down stay skipped and recover on restart via the pin.
		for _, mem := range members {
			if err := mem.Sync(); err != nil {
				event("skip", mem.ID())
			}
		}
		event("rollback", fmt.Sprintf("v%d", previous))
		return res, nil
	}

	res.Outcome = registry.WaveStateComplete
	event("guard-pass", fmt.Sprintf("v%d", candidate))
	return res, reg.SetWaveState(candidate, registry.WaveStateComplete, "")
}

// previousVersion resolves the generation the fleet serves before the
// wave: the pinned version when one is set, otherwise the newest version
// below the candidate (the candidate itself is usually the latest, so
// "latest" would be wrong the moment it is published).
func previousVersion(reg *registry.Registry, candidate int) (int, error) {
	if _, err := reg.Manifest(candidate); err != nil {
		return 0, err
	}
	pinned, err := reg.Pinned()
	if err != nil {
		return 0, err
	}
	if pinned > 0 {
		if pinned == candidate {
			return 0, fmt.Errorf("cluster: candidate v%d is already pinned", candidate)
		}
		return pinned, nil
	}
	versions, err := reg.Versions()
	if err != nil {
		return 0, err
	}
	prev := 0
	for _, v := range versions {
		if v < candidate && v > prev {
			prev = v
		}
	}
	if prev == 0 {
		return 0, fmt.Errorf("cluster: no previous generation below candidate v%d", candidate)
	}
	return prev, nil
}
