// Package cluster is tasqd's scale-out layer: a sharded fleet of serving
// replicas behind one client. One tasqd process cannot serve millions of
// users (ROADMAP item 2), so the fleet shares the filesystem model
// registry — already crash-safe and cross-process collision-tolerant —
// and splits the scoring keyspace with a consistent-hash ring over the
// job feature-cache key, so each shard's memoized curve cache stays hot
// for the jobs it owns.
//
// The package provides three pieces:
//
//   - Ring: the consistent-hash member ring (this file). Assignment is a
//     pure function of the member *set*, so ejecting and re-admitting a
//     replica restores exactly the original routing — the
//     minimal-key-movement property the fleet chaos suite asserts.
//   - Fleet: N in-process-spawnable tasqd replicas over one registry
//     (fleet.go), with drain-based kill, restart, and partition controls
//     for deterministic chaos testing.
//   - Wave: rolling model promotion across the fleet (wave.go), reusing
//     the autopilot promotion state machine: shadow on one canary
//     replica, promote on its verdict, then wave the new generation
//     through the rest.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-member vnode count. 1024 points per
// member holds every member's load share within ±20% of 1/N at the fleet
// sizes the chaos suite runs (the property test pins this); the ring
// stays tiny — N·1024 24-byte points — and lookups are a binary search.
const DefaultVirtualNodes = 1024

// point is one vnode: a position on the 64-bit ring owned by a member.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members. A key is owned by
// the member of the first vnode clockwise from the key's hash. Safe for
// concurrent use.
//
// Determinism contract: the assignment of keys to members is a pure
// function of the member set (member names and vnode count) — insertion
// order, removal history and timing never matter. Removing a member moves
// only the keys it owned; adding one moves only the keys it takes over.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash, ties broken by member name
	members map[string]struct{}
}

// NewRing builds an empty ring; vnodes < 1 takes DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// pointHash places vnode i of a member on the ring: FNV-1a over
// "member#i" pushed through the SplitMix64 finalizer, the same
// avalanche construction as the fault injector's decision streams —
// plain FNV clusters badly on short names that differ in one byte.
func pointHash(member string, i int) uint64 {
	h := uint64(14695981039346656037)
	for j := 0; j < len(member); j++ {
		h ^= uint64(member[j])
		h *= 1099511628211
	}
	h ^= uint64(i) + 0x9e3779b97f4a7c15
	return mix64(h)
}

// KeyHash maps a routing key onto the ring. Routing keys are full
// feature-cache keys — hundreds of bytes — and the balancer hashes one
// per request, so this consumes 8-byte words through the SplitMix64
// finalizer instead of byte-at-a-time FNV (~6x faster on cache keys,
// same avalanche quality; the ring balance property test pins the
// distribution). The key length is folded into the seed so a short key
// and its zero-padded extension cannot collide. Exported so tests and
// the balancer agree on the placement function; the hash is a fixed
// pure function of the bytes, so every client routes identically.
func KeyHash(key []byte) uint64 {
	h := uint64(14695981039346656037) ^ uint64(len(key))
	for len(key) >= 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(key))
		key = key[8:]
	}
	if len(key) > 0 {
		var tail uint64
		for i, b := range key {
			tail |= uint64(b) << (8 * uint(i))
		}
		h = mix64(h ^ tail)
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts a member's vnodes. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: pointHash(member, i), member: member})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
}

// Remove deletes a member and its vnodes. Unknown members are a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[member]
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member names sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Pick returns the member owning a key, or "" and false on an empty ring.
func (r *Ring) Pick(key []byte) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.successor(KeyHash(key))].member, true
}

// successor finds the index of the first point at or clockwise of h.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return i
}

// Sequence returns up to n distinct members in ring order starting from
// the key's owner — the failover preference order: if the owner is down,
// the next distinct member clockwise takes the request, and so on. n ≤ 0
// or n > Len() returns every member.
func (r *Ring) Sequence(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.successor(KeyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.member]; ok {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}

// Assign maps every key to its owner in one pass — the bulk form tests
// and the minimal-movement checker use. Returns an error on an empty
// ring rather than silently assigning nothing.
func (r *Ring) Assign(keys [][]byte) (map[string]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, fmt.Errorf("cluster: assigning %d keys on an empty ring", len(keys))
	}
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[string(k)] = r.points[r.successor(KeyHash(k))].member
	}
	return out, nil
}
