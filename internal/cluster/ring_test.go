package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// synthKeys builds the deterministic synthetic keyspace for a seed: the
// shape mimics the serving curve-cache key (model name + job features)
// without importing the serve package.
func synthKeys(seed int64, n int) [][]byte {
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("xgboost-pl\x00job-%d-%04d/tokens=%d", seed, i, 16+(i%241)))
	}
	return keys
}

// memberNames builds n replica IDs in tasqd's -cluster-id convention.
func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tasqd-%d", i)
	}
	return out
}

func ringOf(members []string) *Ring {
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func loads(assign map[string]string) map[string]int {
	out := map[string]int{}
	for _, m := range assign {
		out[m]++
	}
	return out
}

// TestRingBalance is the satellite property test: across 1k synthetic
// keys the per-member load stays within ±20% of the fair share keys/N,
// for every fleet size the chaos suite runs, at several fixed seeds.
func TestRingBalance(t *testing.T) {
	const numKeys = 1000
	for _, seed := range []int64{1, 42, 1337} {
		keys := synthKeys(seed, numKeys)
		for _, n := range []int{2, 3, 5, 8} {
			t.Run(fmt.Sprintf("seed=%d/n=%d", seed, n), func(t *testing.T) {
				r := ringOf(memberNames(n))
				assign, err := r.Assign(keys)
				if err != nil {
					t.Fatal(err)
				}
				fair := float64(numKeys) / float64(n)
				lo, hi := fair*0.8, fair*1.2
				for member, load := range loads(assign) {
					if float64(load) < lo || float64(load) > hi {
						t.Errorf("member %s load %d outside ±20%% of fair share %.1f", member, load, fair)
					}
				}
				if got := len(loads(assign)); got != n {
					t.Errorf("only %d of %d members own keys", got, n)
				}
			})
		}
	}
}

// TestRingMinimalMovement is the satellite movement test: when one member
// joins or leaves, at most keys/N + ε keys remap — and strictly, a join
// moves keys only *onto* the joiner and a leave moves only the leaver's
// keys. Anything else would dump whole shards' curve caches on every
// membership change.
func TestRingMinimalMovement(t *testing.T) {
	const numKeys = 1000
	for _, seed := range []int64{1, 42, 1337} {
		keys := synthKeys(seed, numKeys)
		for _, n := range []int{2, 3, 5, 8} {
			t.Run(fmt.Sprintf("seed=%d/n=%d", seed, n), func(t *testing.T) {
				members := memberNames(n)
				base := ringOf(members)
				before, err := base.Assign(keys)
				if err != nil {
					t.Fatal(err)
				}
				// ε: a quarter of the fair share on top of keys/N — tighter
				// than the ±20% balance bound, far below the keys·(N-1)/N a
				// naive mod-N rehash would move.
				eps := numKeys / (4 * n)
				bound := numKeys/n + eps

				// Join: a new member takes over only its own keys.
				joined := ringOf(members)
				joined.Add("tasqd-new")
				after, err := joined.Assign(keys)
				if err != nil {
					t.Fatal(err)
				}
				moved := 0
				for k, owner := range after {
					if owner != before[k] {
						moved++
						if owner != "tasqd-new" {
							t.Fatalf("join moved key %q from %s to %s, not to the joiner", k, before[k], owner)
						}
					}
				}
				if moved == 0 || moved > bound {
					t.Errorf("join moved %d keys, want 1..%d (keys/N=%d + ε=%d)", moved, bound, numKeys/n, eps)
				}

				// Leave: only the leaver's keys move (n ≥ 2 keeps the ring
				// non-empty afterwards).
				leaver := members[0]
				left := ringOf(members)
				left.Remove(leaver)
				afterLeave, err := left.Assign(keys)
				if err != nil {
					t.Fatal(err)
				}
				moved = 0
				for k, owner := range afterLeave {
					if owner != before[k] {
						moved++
						if before[k] != leaver {
							t.Fatalf("leave of %s moved key %q owned by %s", leaver, k, before[k])
						}
					}
					if owner == leaver {
						t.Fatalf("key %q still assigned to removed member", k)
					}
				}
				if moved == 0 || moved > bound {
					t.Errorf("leave moved %d keys, want 1..%d", moved, bound)
				}
			})
		}
	}
}

// TestRingSetDeterminism pins the re-admission guarantee the fleet relies
// on: assignment is a pure function of the member set, so removing a
// member and adding it back — or building the same set in any order —
// restores the identical routing.
func TestRingSetDeterminism(t *testing.T) {
	keys := synthKeys(7, 500)
	members := memberNames(5)

	forward := ringOf(members)
	reversed := NewRing(0)
	for i := len(members) - 1; i >= 0; i-- {
		reversed.Add(members[i])
	}
	a1, err := forward.Assign(keys)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := reversed.Assign(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("assignment depends on member insertion order")
	}

	// Eject + re-admit round-trips to the original assignment.
	forward.Remove("tasqd-2")
	forward.Add("tasqd-2")
	a3, err := forward.Assign(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a3) {
		t.Fatal("re-admission did not restore the original assignment")
	}
}

// TestRingSequence pins the failover order: it starts at the key's owner,
// lists distinct members, honors n, and returns everyone for n ≤ 0.
func TestRingSequence(t *testing.T) {
	r := ringOf(memberNames(5))
	for _, key := range synthKeys(3, 50) {
		owner, ok := r.Pick(key)
		if !ok {
			t.Fatal("Pick on non-empty ring failed")
		}
		seq := r.Sequence(key, 3)
		if len(seq) != 3 {
			t.Fatalf("Sequence(n=3) returned %d members", len(seq))
		}
		if seq[0] != owner {
			t.Fatalf("Sequence starts at %s, Pick says %s", seq[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence repeated member %s", m)
			}
			seen[m] = true
		}
		if all := r.Sequence(key, 0); len(all) != 5 {
			t.Fatalf("Sequence(n=0) returned %d members, want all 5", len(all))
		}
	}
}

// TestRingEmptyAndMembership covers the edge contract: empty-ring Pick /
// Sequence / Assign, idempotent Add, unknown Remove, Members ordering.
func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Pick([]byte("k")); ok {
		t.Fatal("Pick on empty ring succeeded")
	}
	if seq := r.Sequence([]byte("k"), 2); seq != nil {
		t.Fatalf("Sequence on empty ring = %v", seq)
	}
	if _, err := r.Assign([][]byte{[]byte("k")}); err == nil {
		t.Fatal("Assign on empty ring succeeded")
	}
	r.Add("b")
	r.Add("a")
	r.Add("a") // idempotent
	r.Remove("zzz")
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Members = %v", got)
	}
	if !r.Has("a") || r.Has("zzz") {
		t.Fatal("Has membership wrong")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Single-member ring owns everything.
	r.Remove("b")
	owner, ok := r.Pick([]byte("anything"))
	if !ok || owner != "a" {
		t.Fatalf("single-member Pick = %q, %v", owner, ok)
	}
}
