package cluster

import (
	"errors"
	"strings"
	"testing"

	"tasq/internal/jobrepo"
	"tasq/internal/registry"
	"tasq/internal/scopesim"
	"tasq/internal/serve"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

// trainPipeline builds the small fast pipeline the chaos fixtures use:
// 30 synthetic jobs, an 8-tree XGB, heavyweight predictors skipped.
func trainPipeline(t testing.TB, seed int64) (*trainer.Pipeline, []*jobrepo.Record) {
	t.Helper()
	g := workload.New(workload.TestConfig(seed))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(30), &ex); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	cfg := trainer.DefaultConfig(seed)
	cfg.XGB.NumTrees = 8
	cfg.SkipNN = true
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return p, repo.All()
}

// fleetFixture publishes one generation into a fresh registry dir and
// boots a fleet of n over it.
func fleetFixture(t *testing.T, n int) (*Fleet, *registry.Registry, []*jobrepo.Record) {
	t.Helper()
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	p1, recs := trainPipeline(t, 51)
	if _, err := reg.PublishPipeline(p1, registry.Manifest{Notes: "fleet v1"}); err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	f, err := NewFleet(dir, n, t.Logf)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f, reg, recs
}

func scoreOn(t *testing.T, r *Replica, job *scopesim.Job) (*serve.ScoreResponse, error) {
	t.Helper()
	return serve.NewClient(r.URL()).Score(&serve.ScoreRequest{Job: job})
}

func TestFleetBootAndScore(t *testing.T) {
	f, _, recs := fleetFixture(t, 3)
	urls := map[string]bool{}
	for _, r := range f.Replicas() {
		if !r.Alive() {
			t.Fatalf("replica %s not alive after boot", r.ID())
		}
		if got := r.ActiveVersion(); got != 1 {
			t.Fatalf("replica %s active v%d, want v1", r.ID(), got)
		}
		if r.Incarnation() != 1 {
			t.Fatalf("replica %s incarnation %d, want 1", r.ID(), r.Incarnation())
		}
		if urls[r.URL()] {
			t.Fatalf("duplicate replica URL %s", r.URL())
		}
		urls[r.URL()] = true
		resp, err := scoreOn(t, r, recs[0].Job)
		if err != nil {
			t.Fatalf("score on %s: %v", r.ID(), err)
		}
		if resp.ModelVersion != 1 {
			t.Fatalf("score on %s served v%d, want v1", r.ID(), resp.ModelVersion)
		}
	}
	if f.ByID("r1") != f.Replica(1) {
		t.Fatal("ByID(r1) != Replica(1)")
	}
	if f.ByID("nope") != nil {
		t.Fatal("ByID(nope) should be nil")
	}
}

func TestFleetPartitionGate(t *testing.T) {
	f, _, recs := fleetFixture(t, 2)
	r := f.Replica(0)

	if err := r.Partition(true); err != nil {
		t.Fatalf("partition: %v", err)
	}
	if !r.Partitioned() {
		t.Fatal("replica should report partitioned")
	}
	_, err := scoreOn(t, r, recs[0].Job)
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != 503 || !strings.Contains(se.Message, partitionedBody) {
		t.Fatalf("partitioned score: want 503 %q, got %v", partitionedBody, err)
	}
	if got := r.PartitionRefusals()["/v1/score"]; got < 1 {
		t.Fatalf("partition refusals for /v1/score = %d, want >= 1", got)
	}
	// The refusal happened outside the instrumented mux: the server's own
	// HTTP counters must not have seen those requests.
	now, err := r.MetricsNow()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for k, v := range now {
		if strings.HasPrefix(k, "tasq_http_requests_total") && v != 0 {
			t.Fatalf("partitioned replica counted HTTP traffic: %s = %v", k, v)
		}
	}

	if err := r.Partition(false); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if _, err := scoreOn(t, r, recs[0].Job); err != nil {
		t.Fatalf("score after heal: %v", err)
	}
}

func TestFleetKillRestartMetrics(t *testing.T) {
	f, _, recs := fleetFixture(t, 2)
	r := f.Replica(0)

	const preKill = 3
	for i := 0; i < preKill; i++ {
		if _, err := scoreOn(t, r, recs[i].Job); err != nil {
			t.Fatalf("score %d: %v", i, err)
		}
	}
	if err := r.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if r.Alive() || r.URL() != "" || r.Server() != nil || r.ActiveVersion() != 0 {
		t.Fatal("killed replica still reports a live incarnation")
	}
	if err := r.Kill(); err == nil {
		t.Fatal("double kill should error")
	}
	if err := r.Sync(); err == nil {
		t.Fatal("sync on dead replica should error")
	}
	if err := r.Partition(true); err == nil {
		t.Fatal("partition on dead replica should error")
	}
	if _, err := r.MetricsNow(); err == nil {
		t.Fatal("MetricsNow on dead replica should error")
	}

	// The dead incarnation's counters survive in the accumulator.
	total, err := r.MetricsTotal()
	if err != nil {
		t.Fatalf("metrics total: %v", err)
	}
	okKey := `tasq_score_jobs_total{outcome="ok"}`
	if got := total[okKey]; got != preKill {
		t.Fatalf("accumulated %s = %v, want %d", okKey, got, preKill)
	}
	for k := range total {
		if strings.HasPrefix(k, "tasq_model_version") {
			t.Fatalf("gauge %s leaked into cumulative totals", k)
		}
	}

	if err := r.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := r.Restart(); err == nil {
		t.Fatal("double restart should error")
	}
	if r.Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2", r.Incarnation())
	}
	if got := r.ActiveVersion(); got != 1 {
		t.Fatalf("restarted replica active v%d, want v1", got)
	}
	const postRestart = 2
	for i := 0; i < postRestart; i++ {
		if _, err := scoreOn(t, r, recs[i].Job); err != nil {
			t.Fatalf("post-restart score %d: %v", i, err)
		}
	}
	// Cross-incarnation sum: dead incarnation + live one.
	total, err = r.MetricsTotal()
	if err != nil {
		t.Fatalf("metrics total: %v", err)
	}
	if got := total[okKey]; got != preKill+postRestart {
		t.Fatalf("cross-incarnation %s = %v, want %d", okKey, got, preKill+postRestart)
	}
	// The live exposition still carries gauges.
	now, err := r.MetricsNow()
	if err != nil {
		t.Fatalf("metrics now: %v", err)
	}
	if got := now[`tasq_model_version{role="active"}`]; got != 1 {
		t.Fatalf("active version gauge = %v, want 1", got)
	}
}

func TestFleetBadSize(t *testing.T) {
	if _, err := NewFleet(t.TempDir(), 0, nil); err == nil {
		t.Fatal("fleet of 0 should error")
	}
}
