package cluster

import (
	"fmt"
	"strings"
	"testing"

	"tasq/internal/autopilot"
	"tasq/internal/registry"
)

// waveFixture is fleetFixture plus a second published generation the
// fleet has not synced onto — the wave's candidate.
func waveFixture(t *testing.T, n int) (*Fleet, *registry.Registry, int) {
	t.Helper()
	f, reg, _ := fleetFixture(t, n)
	p2, _ := trainPipeline(t, 53)
	cand, err := reg.PublishPipeline(p2, registry.Manifest{Notes: "fleet v2 candidate"})
	if err != nil {
		t.Fatalf("publish candidate: %v", err)
	}
	return f, reg, cand
}

// fastMachine decides quickly: 4 comparison samples, a 5-sample guard
// window with a 2-sample spike minimum.
func fastMachine() autopilot.MachineConfig {
	return autopilot.MachineConfig{
		PromoteMinN: 4, PromoteDelta: 0.02,
		GuardrailWindow: 5, GuardrailFactor: 2,
		GuardrailFloor: 0.05, GuardAlpha: 0.5, GuardMinSamples: 2,
	}
}

func syncers(f *Fleet) []Syncer {
	out := make([]Syncer, 0, f.Size())
	for _, r := range f.Replicas() {
		out = append(out, r)
	}
	return out
}

func betterCandidate(int) (float64, float64) { return 0.01, 0.10 }
func worseCandidate(int) (float64, float64)  { return 0.20, 0.10 }
func quietGuard(int) float64                 { return 0.01 }
func spikingGuard(int) float64               { return 5.0 }

func TestWavePromoteGuardPass(t *testing.T) {
	f, reg, cand := waveFixture(t, 3)
	var events []string
	cfg := WaveConfig{
		Machine: fastMachine(),
		OnEvent: func(ev, detail string) {
			events = append(events, ev+":"+detail)
			if ev == "canary" {
				// At canary time only r0 shadows the candidate; the rest
				// of the fleet has never seen it.
				if got := f.Replica(0).ShadowVersion(); got != cand {
					t.Errorf("canary shadow v%d, want v%d", got, cand)
				}
				if got := f.Replica(0).ActiveVersion(); got != 1 {
					t.Errorf("canary active v%d during shadow, want v1", got)
				}
				if got := f.Replica(1).ShadowVersion(); got != 0 {
					t.Errorf("non-canary shadows v%d before promotion", got)
				}
			}
		},
	}
	res, err := RunWave(reg, syncers(f), cand, betterCandidate, quietGuard, cfg)
	if err != nil {
		t.Fatalf("wave: %v", err)
	}
	if res.Outcome != registry.WaveStateComplete || !res.Promoted() {
		t.Fatalf("outcome %q, want complete", res.Outcome)
	}
	if res.Previous != 1 || res.Candidate != cand {
		t.Fatalf("wave versions %d -> %d, want 1 -> %d", res.Previous, res.Candidate, cand)
	}
	if res.Samples != 4 {
		t.Fatalf("decision after %d samples, want exactly 4", res.Samples)
	}
	if got := fmt.Sprint(res.Adopted); got != "[r0 r1 r2]" {
		t.Fatalf("adopted %s, want [r0 r1 r2]", got)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped %v, want none", res.Skipped)
	}
	wantEvents := "canary:r0 promote:v2 adopt:r0 adopt:r1 adopt:r2 guard-pass:v2"
	if got := strings.Join(events, " "); got != wantEvents {
		t.Fatalf("events:\n got %s\nwant %s", got, wantEvents)
	}

	for _, r := range f.Replicas() {
		if got := r.ActiveVersion(); got != cand {
			t.Fatalf("replica %s active v%d after wave, want v%d", r.ID(), got, cand)
		}
		if got := r.ShadowVersion(); got != 0 {
			t.Fatalf("replica %s still shadows v%d after wave", r.ID(), got)
		}
	}
	if pinned, _ := reg.Pinned(); pinned != cand {
		t.Fatalf("pinned v%d, want v%d", pinned, cand)
	}
	rec, err := reg.Promotion()
	if err != nil {
		t.Fatalf("promotion record: %v", err)
	}
	if rec.Version != cand || rec.Previous != 1 || rec.RolledBack {
		t.Fatalf("promotion record %+v", rec)
	}
	st, err := reg.WaveStatus(cand)
	if err != nil {
		t.Fatalf("wave status: %v", err)
	}
	if st.State != registry.WaveStateComplete || st.Canary != "r0" ||
		fmt.Sprint(st.Adopted) != "[r0 r1 r2]" {
		t.Fatalf("wave status %+v", st)
	}
}

func TestWaveReject(t *testing.T) {
	f, reg, cand := waveFixture(t, 2)
	res, err := RunWave(reg, syncers(f), cand, worseCandidate, quietGuard, WaveConfig{Machine: fastMachine()})
	if err != nil {
		t.Fatalf("wave: %v", err)
	}
	if res.Outcome != registry.WaveStateRejected || res.Promoted() {
		t.Fatalf("outcome %q, want rejected", res.Outcome)
	}
	// The fleet stays frozen on the previous generation.
	if pinned, _ := reg.Pinned(); pinned != 1 {
		t.Fatalf("pinned v%d after reject, want v1", pinned)
	}
	for _, r := range f.Replicas() {
		if got := r.ActiveVersion(); got != 1 {
			t.Fatalf("replica %s active v%d after reject, want v1", r.ID(), got)
		}
	}
	st, err := reg.WaveStatus(cand)
	if err != nil {
		t.Fatalf("wave status: %v", err)
	}
	if st.State != registry.WaveStateRejected || len(st.Adopted) != 0 {
		t.Fatalf("wave status %+v", st)
	}
	if _, err := reg.Promotion(); err != registry.ErrNoPromotion {
		t.Fatalf("rejected wave wrote a promotion record: %v", err)
	}
}

func TestWaveRollback(t *testing.T) {
	f, reg, cand := waveFixture(t, 3)
	res, err := RunWave(reg, syncers(f), cand, betterCandidate, spikingGuard, WaveConfig{Machine: fastMachine()})
	if err != nil {
		t.Fatalf("wave: %v", err)
	}
	if res.Outcome != registry.WaveStateRolledBack || res.Promoted() {
		t.Fatalf("outcome %q, want rolled-back", res.Outcome)
	}
	if res.GuardSamples != 2 {
		t.Fatalf("rollback after %d guard samples, want 2 (the spike minimum)", res.GuardSamples)
	}
	// Everything is re-pinned and re-synced onto the previous generation.
	if pinned, _ := reg.Pinned(); pinned != 1 {
		t.Fatalf("pinned v%d after rollback, want v1", pinned)
	}
	for _, r := range f.Replicas() {
		if got := r.ActiveVersion(); got != 1 {
			t.Fatalf("replica %s active v%d after rollback, want v1", r.ID(), got)
		}
	}
	rec, err := reg.Promotion()
	if err != nil {
		t.Fatalf("promotion record: %v", err)
	}
	if !rec.RolledBack || rec.Version != cand || rec.Previous != 1 {
		t.Fatalf("promotion record %+v, want rolled back %d -> 1", rec, cand)
	}
	st, _ := reg.WaveStatus(cand)
	if st.State != registry.WaveStateRolledBack {
		t.Fatalf("wave state %q, want rolled-back", st.State)
	}
}

func TestWaveSkipsDeadMember(t *testing.T) {
	f, reg, cand := waveFixture(t, 3)
	if err := f.Replica(2).Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	res, err := RunWave(reg, syncers(f), cand, betterCandidate, quietGuard, WaveConfig{Machine: fastMachine()})
	if err != nil {
		t.Fatalf("wave: %v", err)
	}
	if res.Outcome != registry.WaveStateComplete {
		t.Fatalf("outcome %q, want complete", res.Outcome)
	}
	if fmt.Sprint(res.Adopted) != "[r0 r1]" || fmt.Sprint(res.Skipped) != "[r2]" {
		t.Fatalf("adopted %v skipped %v, want [r0 r1] / [r2]", res.Adopted, res.Skipped)
	}
	// The pin is registry state: the dead member adopts the promoted
	// generation the moment it restarts, no wave replay needed.
	if err := f.Replica(2).Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := f.Replica(2).ActiveVersion(); got != cand {
		t.Fatalf("restarted replica active v%d, want v%d", got, cand)
	}
}

func TestWaveInputValidation(t *testing.T) {
	f, reg, cand := waveFixture(t, 2)
	if _, err := RunWave(reg, nil, cand, betterCandidate, quietGuard, WaveConfig{}); err == nil {
		t.Fatal("empty fleet should error")
	}
	if _, err := RunWave(reg, syncers(f), cand, nil, nil, WaveConfig{}); err == nil {
		t.Fatal("missing oracles should error")
	}
	if _, err := RunWave(reg, syncers(f), 99, betterCandidate, quietGuard, WaveConfig{}); err == nil {
		t.Fatal("unknown candidate should error")
	}
	// Pin the candidate itself: the wave must refuse (nothing to roll
	// back to).
	if err := reg.Pin(cand); err != nil {
		t.Fatalf("pin: %v", err)
	}
	if _, err := RunWave(reg, syncers(f), cand, betterCandidate, quietGuard, WaveConfig{}); err == nil {
		t.Fatal("already-pinned candidate should error")
	}
	if err := reg.Unpin(); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	// A single-version registry has no previous generation to freeze.
	dir := t.TempDir()
	solo, err := registry.Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p, _ := trainPipeline(t, 51)
	v, err := solo.PublishPipeline(p, registry.Manifest{})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := RunWave(solo, syncers(f), v, betterCandidate, quietGuard, WaveConfig{}); err == nil {
		t.Fatal("wave without a previous generation should error")
	}
}
