package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tasq/internal/registry"
	"tasq/internal/serve"
)

// Replica is one in-process tasqd instance in a fleet: its own Server,
// Reloader and listener over the shared filesystem registry, plus the
// chaos controls the fleet suite drives — drain-based kill, restart as a
// fresh incarnation, and a network-partition gate. Every control is
// deterministic: a kill drains in-flight work before the listener closes
// (no response is ever counted by the server but lost by the client), a
// partition refuses with a counted 503 instead of dropping bytes, and
// registry adoption happens only on explicit Sync (the reloader's poll
// loop is never started), so a seeded schedule replays event for event.
type Replica struct {
	id   string
	reg  *registry.Registry
	opts []serve.Option
	logf func(string, ...any)

	// partitioned gates the listener outside the instrumented mux, so
	// refusals are counted here, not in the server's HTTP metrics.
	partitioned atomic.Bool

	mu          sync.Mutex
	srv         *serve.Server
	rl          *serve.Reloader
	ts          *httptest.Server
	alive       bool
	incarnation int
	// acc accumulates cumulative samples (counters, histograms) across
	// dead incarnations; gauges die with their process.
	acc map[string]float64
	// partRefused counts partition 503s by route, across incarnations.
	partRefused map[string]int64
}

// partitionedBody is the 503 body the partition gate serves; the fleet
// suite classifies partition refusals by this marker.
const partitionedBody = "cluster: partitioned"

// newReplica opens the replica's own registry handle on the shared dir —
// each member reads the registry the way a separate process would — and
// boots the first incarnation.
func newReplica(id, dir string, logf func(string, ...any), opts []serve.Option) (*Replica, error) {
	reg, err := registry.Open(dir)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		id:          id,
		reg:         reg,
		opts:        opts,
		logf:        logf,
		acc:         make(map[string]float64),
		partRefused: make(map[string]int64),
	}
	if err := r.start(); err != nil {
		return nil, err
	}
	return r, nil
}

// start boots an incarnation: unloaded server, reloader, one explicit
// Sync to adopt the registry state, then the listener.
func (r *Replica) start() error {
	srv, err := serve.NewUnloadedServer(r.opts...)
	if err != nil {
		return err
	}
	// The poll interval is effectively infinite: Run is never called, so
	// the replica adopts registry changes only on explicit Sync — the
	// determinism the chaos schedule relies on.
	rl := serve.NewReloader(r.reg, srv, time.Hour, r.logf)
	if err := rl.Sync(); err != nil {
		return err
	}
	ts := httptest.NewServer(r.gate(srv.Handler()))

	r.mu.Lock()
	r.srv, r.rl, r.ts = srv, rl, ts
	r.alive = true
	r.incarnation++
	r.mu.Unlock()
	return nil
}

// gate wraps an incarnation's handler with the partition check. Sitting
// in front of the instrumented mux, a partition refusal never reaches the
// server's metrics — PartitionRefusals carries those counts instead, so
// reconciliation still balances to the request.
func (r *Replica) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r.partitioned.Load() {
			r.mu.Lock()
			r.partRefused[req.URL.Path]++
			r.mu.Unlock()
			w.Header().Set("Retry-After", "1")
			http.Error(w, partitionedBody, http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, req)
	})
}

// ID returns the replica's fleet-wide name.
func (r *Replica) ID() string { return r.id }

// URL returns the current incarnation's base URL; "" when down. A
// restart listens on a fresh port, so callers re-point their client via
// ClusterClient.SetMemberClient, exactly as a rescheduled pod gets a new
// address.
func (r *Replica) URL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive {
		return ""
	}
	return r.ts.URL
}

// Alive reports whether an incarnation is serving.
func (r *Replica) Alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive
}

// Partitioned reports whether the partition gate is refusing traffic.
func (r *Replica) Partitioned() bool { return r.partitioned.Load() }

// Incarnation returns how many times this replica has booted.
func (r *Replica) Incarnation() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.incarnation
}

// Server exposes the current incarnation's Server; nil when down.
func (r *Replica) Server() *serve.Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive {
		return nil
	}
	return r.srv
}

// Sync runs one explicit registry reconciliation on the live
// incarnation; an error when the replica is down. Implements the wave's
// Syncer contract.
func (r *Replica) Sync() error {
	r.mu.Lock()
	rl, alive := r.rl, r.alive
	r.mu.Unlock()
	if !alive {
		return fmt.Errorf("cluster: replica %s is down", r.id)
	}
	return rl.Sync()
}

// ActiveVersion returns the serving model generation; 0 when down.
func (r *Replica) ActiveVersion() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive {
		return 0
	}
	return r.srv.ActiveVersion()
}

// ShadowVersion returns the shadow generation; 0 when down or none.
func (r *Replica) ShadowVersion() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive {
		return 0
	}
	return r.srv.ShadowVersion()
}

// Partition flips the partition gate. Partitioning a dead replica is an
// error — there is no listener to gate.
func (r *Replica) Partition(on bool) error {
	if !r.Alive() {
		return fmt.Errorf("cluster: partitioning dead replica %s", r.id)
	}
	r.partitioned.Store(on)
	return nil
}

// Kill takes the incarnation down gracefully: drain (readyz flips, new
// scoring work sheds 503) → listener close, which blocks until every
// in-flight request has its response on the wire → cumulative metrics
// folded into the cross-incarnation accumulator. The drain-first order is
// what makes reconciliation exact: a response is either delivered and
// counted on both sides, or refused and counted on both sides — never
// half-counted.
func (r *Replica) Kill() error {
	r.mu.Lock()
	if !r.alive {
		r.mu.Unlock()
		return fmt.Errorf("cluster: replica %s already down", r.id)
	}
	srv, ts := r.srv, r.ts
	r.alive = false // stop handing out URL/Server while the drain runs
	r.mu.Unlock()

	srv.BeginDrain()
	ts.Close()
	exp, err := scrape(srv)
	if err != nil {
		return err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range cumulativeSamples(exp) {
		r.acc[k] += v
	}
	r.srv, r.rl, r.ts = nil, nil, nil
	r.partitioned.Store(false)
	return nil
}

// Restart boots a fresh incarnation after a Kill: new server, new
// reloader, new listener on a new port, partition gate clear. The new
// incarnation adopts whatever the registry says right now — including a
// promotion wave that rolled past while this replica was down.
func (r *Replica) Restart() error {
	r.mu.Lock()
	if r.alive {
		r.mu.Unlock()
		return fmt.Errorf("cluster: replica %s already running", r.id)
	}
	r.mu.Unlock()
	return r.start()
}

// MetricsNow returns the live incarnation's samples ("name{labels}" →
// value, counters and gauges alike); an error when the replica is down.
// Gauge assertions belong here — a gauge is a statement about the current
// process, and only the current incarnation has one.
func (r *Replica) MetricsNow() (map[string]float64, error) {
	r.mu.Lock()
	srv, alive := r.srv, r.alive
	r.mu.Unlock()
	if !alive {
		return nil, fmt.Errorf("cluster: replica %s is down", r.id)
	}
	exp, err := scrape(srv)
	if err != nil {
		return nil, err
	}
	return parseSamples(exp), nil
}

// MetricsTotal returns cumulative samples (counters, histograms) summed
// across every incarnation this replica has had, dead ones included —
// the replica's side of the fleet reconciliation ledger. Gauges are
// excluded: they reset with the process and summing them is meaningless.
func (r *Replica) MetricsTotal() (map[string]float64, error) {
	r.mu.Lock()
	srv, alive := r.srv, r.alive
	out := make(map[string]float64, len(r.acc))
	for k, v := range r.acc {
		out[k] = v
	}
	r.mu.Unlock()
	if alive {
		exp, err := scrape(srv)
		if err != nil {
			return nil, err
		}
		for k, v := range cumulativeSamples(exp) {
			out[k] += v
		}
	}
	return out, nil
}

// PartitionRefusals returns a copy of the per-route partition 503
// counts, cumulative across incarnations.
func (r *Replica) PartitionRefusals() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.partRefused))
	for k, v := range r.partRefused {
		out[k] = v
	}
	return out
}

// scrape renders a server's metrics registry in-process — no HTTP hop,
// so it works mid-drain and after the listener is gone.
func scrape(srv *serve.Server) (string, error) {
	var b strings.Builder
	if _, err := srv.Registry().WriteTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// parseSamples reads a Prometheus text exposition into "name{labels}" →
// value.
func parseSamples(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// cumulativeSamples parses an exposition keeping only samples of
// cumulative families — counters and histograms — using the # TYPE lines
// to drop gauges, whose values must not be summed across incarnations.
func cumulativeSamples(text string) map[string]float64 {
	gauges := map[string]struct{}{}
	for _, line := range strings.Split(text, "\n") {
		var name, kind string
		if n, _ := fmt.Sscanf(line, "# TYPE %s %s", &name, &kind); n == 2 && kind == "gauge" {
			gauges[name] = struct{}{}
		}
	}
	out := parseSamples(text)
	for k := range out {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if _, ok := gauges[name]; ok {
			delete(out, k)
		}
	}
	return out
}

// Fleet is a set of replicas over one shared registry directory —
// in-process stand-ins for N tasqd processes behind a ClusterClient.
type Fleet struct {
	replicas []*Replica
}

// NewFleet boots n replicas ("r0" … "rN-1"), each with its own registry
// handle on dir and its own serving stack built from opts. logf
// (optional) receives each replica's reload log lines prefixed with its
// ID.
func NewFleet(dir string, n int, logf func(string, ...any), opts ...serve.Option) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: fleet of %d replicas", n)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%d", i)
		rlogf := func(format string, args ...any) {
			logf("["+id+"] "+format, args...)
		}
		r, err := newReplica(id, dir, rlogf, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.replicas = append(f.replicas, r)
	}
	return f, nil
}

// Size returns the replica count, dead or alive.
func (f *Fleet) Size() int { return len(f.replicas) }

// Replica returns the i-th replica.
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// Replicas returns the replicas in ID order.
func (f *Fleet) Replicas() []*Replica {
	return append([]*Replica(nil), f.replicas...)
}

// ByID finds a replica by name; nil if unknown.
func (f *Fleet) ByID(id string) *Replica {
	for _, r := range f.replicas {
		if r.id == id {
			return r
		}
	}
	return nil
}

// SyncAll runs one registry reconciliation on every live replica,
// returning the first error.
func (f *Fleet) SyncAll() error {
	for _, r := range f.replicas {
		if !r.Alive() {
			continue
		}
		if err := r.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close drains and kills every live replica.
func (f *Fleet) Close() {
	for _, r := range f.replicas {
		if r != nil && r.Alive() {
			_ = r.Kill()
		}
	}
}
