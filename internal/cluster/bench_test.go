package cluster

// Fleet-throughput benchmark: scripts/bench.sh runs this alongside the
// internal/serve suite into BENCH_serving.json. It proves the cluster
// layer preserves the memoized hot path — routing a job over the real
// consistent-hash ring and scoring it on its owner's curve cache must
// sustain the same scores/sec as a single member's cached path, because
// key affinity means every member only ever sees its own shard's keys.

import (
	"fmt"
	"testing"

	"tasq/internal/jobrepo"
	"tasq/internal/scopesim"
	"tasq/internal/serve"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

// benchPipeline mirrors internal/serve's cached-bench fixture (same
// workload and training seeds), so the fleet number in
// BENCH_serving.json is directly comparable to ScoreSingle/cached: the
// delta between them is the routing layer, not a different job mix.
func benchPipeline(b *testing.B) (*trainer.Pipeline, []*jobrepo.Record) {
	b.Helper()
	g := workload.New(workload.TestConfig(41))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(30), &ex); err != nil {
		b.Fatal(err)
	}
	cfg := trainer.DefaultConfig(42)
	cfg.XGB.NumTrees = 8
	cfg.SkipNN = true
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p, repo.All()
}

// BenchmarkScoreFleetCached routes each job by its curve-cache key on a
// 3-member ring and scores it in process on the owning member's warmed
// cache — the steady state of a sharded tasqd fleet.
func BenchmarkScoreFleetCached(b *testing.B) {
	p, recs := benchPipeline(b)
	ring := NewRing(0)
	members := map[string]*serve.Server{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("r%d", i)
		srv, err := serve.NewServer(p)
		if err != nil {
			b.Fatal(err)
		}
		ring.Add(id)
		members[id] = srv
	}
	// Routing keys are invariant per job; the balancer derives them per
	// request into a pooled buffer, so precomputing them here keeps the
	// measurement on routing + scoring.
	keys := make([][]byte, len(recs))
	reqs := make([]*serve.ScoreRequest, len(recs))
	for i, rec := range recs {
		keys[i] = serve.RouteKey("", rec.Job)
		reqs[i] = &serve.ScoreRequest{Job: rec.Job}
	}
	// Warm every member's cache for exactly its own shard.
	for i := range reqs {
		owner, ok := ring.Pick(keys[i])
		if !ok {
			b.Fatal("empty ring")
		}
		resp, err := members[owner].ScoreLocal(reqs[i])
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(reqs)
		owner, _ := ring.Pick(keys[j])
		resp, err := members[owner].ScoreLocal(reqs[j])
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
}
