// Package workload synthesizes SCOPE-like production workloads, standing in
// for the proprietary Cosmos traces the paper trains on (85K jobs/day; see
// DESIGN.md). Generated jobs reproduce the population properties the paper
// reports in §5: right-skewed run-time and token distributions, a mix of
// recurring (template-instantiated) and ad-hoc jobs, and compile-time
// operator estimates that are noisy versions of the true values the
// executor runs on — so learned models face realistic estimation error.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tasq/internal/scopesim"
)

// Config controls workload synthesis.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// NumTemplates is the number of distinct recurring-job templates; the
	// paper notes 40–60% of SCOPE jobs are new, the rest recur.
	NumTemplates int
	// AdHocFraction is the probability a job is ad-hoc (a fresh random
	// plan rather than a template instance).
	AdHocFraction float64
	// SizeScale multiplies job sizes; 1.0 targets the paper's population
	// (median run time minutes, median peak tokens ~50). Tests use
	// smaller values for speed.
	SizeScale float64
	// EstimateSigma is the log-normal noise between true operator metrics
	// and their compile-time estimates (cardinality estimation error).
	EstimateSigma float64
	// VirtualClusters is the number of distinct virtual clusters jobs are
	// submitted to.
	VirtualClusters int
	// Start is the submission time of the first job; jobs arrive at a
	// steady synthetic rate after it.
	Start time.Time
}

// DefaultConfig returns the configuration used by the experiment harnesses.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		NumTemplates:    60,
		AdHocFraction:   0.5,
		SizeScale:       1.0,
		EstimateSigma:   0.35,
		VirtualClusters: 8,
		Start:           time.Date(2022, 1, 10, 0, 0, 0, 0, time.UTC),
	}
}

// TestConfig returns a small, fast configuration for unit tests.
func TestConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumTemplates = 12
	c.SizeScale = 0.25
	return c
}

// template captures the reusable shape of a recurring job.
type template struct {
	name      string
	vc        string
	stages    []templateStage
	baseInput float64 // base leaf cardinality (rows)
	rowLength float64
	// complexity is the pipeline's per-row computational weight (UDO-heavy
	// pipelines churn far longer per row than simple scans); it fattens
	// the run-time tail the paper reports (33s to 21h) and is visible to
	// the models through the operators' cost estimates.
	complexity    float64
	defaultTokens int
}

type templateStage struct {
	deps    []int
	opKinds []scopesim.OpKind
	parts   []scopesim.PartitionMethod
	// widthFactor scales the stage's partition count relative to the
	// job's input-derived parallelism: wide extract/shuffle stages near
	// 1, narrow aggregation/output stages near 0.
	widthFactor float64
	// selectivity is output rows / input rows through this stage.
	selectivity float64
}

// Generator produces jobs. It is not safe for concurrent use; create one
// per goroutine (each is cheap). The pipeline deliberately keeps job
// *generation* on one goroutine — the stream is cheap and sequentially
// seeded, so serializing it preserves the legacy byte-identical workload —
// and instead parallelizes the expensive per-job *executions* downstream
// (jobrepo.IngestParallel, flight.Execute), which draw nothing from this
// rng.
type Generator struct {
	cfg       Config
	rng       *rand.Rand
	templates []*template
	count     int
	// drift multiplies instance input sizes from the moment it is set —
	// the input growth of §1 that makes stale historical skylines
	// unreliable for recurring jobs.
	drift float64
}

// New creates a generator. Invalid or zero config fields are replaced with
// defaults from DefaultConfig.
func New(cfg Config) *Generator {
	def := DefaultConfig(cfg.Seed)
	if cfg.NumTemplates < 1 {
		cfg.NumTemplates = def.NumTemplates
	}
	if cfg.AdHocFraction < 0 || cfg.AdHocFraction > 1 {
		cfg.AdHocFraction = def.AdHocFraction
	}
	if cfg.SizeScale <= 0 {
		cfg.SizeScale = def.SizeScale
	}
	if cfg.EstimateSigma < 0 {
		cfg.EstimateSigma = def.EstimateSigma
	}
	if cfg.VirtualClusters < 1 {
		cfg.VirtualClusters = def.VirtualClusters
	}
	if cfg.Start.IsZero() {
		cfg.Start = def.Start
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), drift: 1}
	for i := 0; i < cfg.NumTemplates; i++ {
		g.templates = append(g.templates, g.newTemplate(i))
	}
	return g
}

// Workload generates n jobs.
func (g *Generator) Workload(n int) []*scopesim.Job {
	out := make([]*scopesim.Job, n)
	for i := range out {
		out[i] = g.Job()
	}
	return out
}

// SetInputDrift multiplies all subsequently generated jobs' input sizes by
// factor (≥ 0.1 enforced): the data growth over time that §1 of the paper
// cites as the reason historical skylines go stale for recurring jobs.
func (g *Generator) SetInputDrift(factor float64) {
	if factor < 0.1 {
		factor = 0.1
	}
	g.drift = factor
}

// Job generates the next job: a template instance with probability
// 1−AdHocFraction, otherwise a fresh ad-hoc plan.
func (g *Generator) Job() *scopesim.Job {
	g.count++
	id := fmt.Sprintf("job-%07d", g.count)
	submit := g.cfg.Start.Add(time.Duration(g.count) * 400 * time.Millisecond)
	if g.rng.Float64() < g.cfg.AdHocFraction {
		t := g.newTemplate(-g.count) // throwaway shape
		t.name = ""                  // ad-hoc jobs carry no template name
		return g.instantiate(t, id, submit)
	}
	t := g.templates[g.rng.Intn(len(g.templates))]
	return g.instantiate(t, id, submit)
}

// newTemplate draws a random job shape. Negative ordinals mark throwaway
// ad-hoc shapes.
func (g *Generator) newTemplate(ordinal int) *template {
	rng := g.rng
	t := &template{
		name: fmt.Sprintf("pipeline-%03d", ordinal),
		vc:   fmt.Sprintf("vc-%02d", rng.Intn(g.cfg.VirtualClusters)),
		// Log-normal input size: median ~3e6 rows with a heavy right tail.
		baseInput:  math.Exp(rng.NormFloat64()*1.8 + 15.2),
		rowLength:  40 + rng.Float64()*400,
		complexity: math.Exp(rng.NormFloat64() * 1.0),
	}
	numStages := 2 + rng.Intn(14) // 2–15 stages
	for s := 0; s < numStages; s++ {
		ts := templateStage{
			widthFactor: 0.2 + rng.Float64()*0.8,
			selectivity: 0.1 + rng.Float64()*0.9,
		}
		if s > 0 {
			// Depend on the previous stage, plus occasionally an earlier one
			// (join fan-in), keeping the DAG connected and layered.
			ts.deps = append(ts.deps, s-1)
			if s > 1 && rng.Float64() < 0.35 {
				d := rng.Intn(s - 1)
				ts.deps = append(ts.deps, d)
			}
		}
		numOps := 1 + rng.Intn(4)
		for o := 0; o < numOps; o++ {
			var k scopesim.OpKind
			switch {
			case s == 0 && o == 0:
				k = leafKinds[rng.Intn(len(leafKinds))]
			case s == numStages-1 && o == numOps-1:
				k = scopesim.OpOutput
			default:
				k = innerKinds[rng.Intn(len(innerKinds))]
			}
			ts.opKinds = append(ts.opKinds, k)
			ts.parts = append(ts.parts, scopesim.PartitionMethod(rng.Intn(scopesim.NumPartitionMethods)))
		}
		t.stages = append(t.stages, ts)
	}
	// Users overwhelmingly pick a default token request (§1's user study):
	// the template default is the smallest round number covering the
	// template's estimated peak parallelism, occasionally one size up
	// (teams "to be safe" pick generous defaults).
	est := t.estimatedPeak(g.cfg.SizeScale)
	idx := 0
	for idx < len(defaultTokenChoices)-1 && defaultTokenChoices[idx] < est {
		idx++
	}
	if rng.Float64() < 0.15 && idx < len(defaultTokenChoices)-1 {
		idx++
	}
	t.defaultTokens = defaultTokenChoices[idx]
	return t
}

// estimatedPeak approximates the widest stage of a typical instance of the
// template, mirroring the width computation in instantiate.
func (t *template) estimatedPeak(scale float64) int {
	input := t.baseInput * scale
	peak := 1
	for _, ts := range t.stages {
		tasks := int(math.Ceil(input / rowsPerPartition * ts.widthFactor * 4))
		if tasks > peak {
			peak = tasks
		}
	}
	if peak > 6000 {
		peak = 6000
	}
	return peak
}

var leafKinds = []scopesim.OpKind{scopesim.OpExtract, scopesim.OpTableScan, scopesim.OpIndexLookup}

var innerKinds = []scopesim.OpKind{
	scopesim.OpFilter, scopesim.OpProject, scopesim.OpProcess, scopesim.OpReduce,
	scopesim.OpCombine, scopesim.OpHashJoin, scopesim.OpMergeJoin,
	scopesim.OpNestedLoopJoin, scopesim.OpCrossJoin, scopesim.OpSemiJoin,
	scopesim.OpAntiSemiJoin, scopesim.OpHashGroupBy, scopesim.OpStreamGroupBy,
	scopesim.OpAggregate, scopesim.OpLocalAggregate, scopesim.OpGlobalAggregate,
	scopesim.OpSort, scopesim.OpTopSort, scopesim.OpWindow, scopesim.OpExchange,
	scopesim.OpBroadcastOp, scopesim.OpHashPartitionOp, scopesim.OpRangePartitionOp,
	scopesim.OpSplit, scopesim.OpSpool, scopesim.OpUnion, scopesim.OpUnionAll,
	scopesim.OpIntersect, scopesim.OpExcept, scopesim.OpView, scopesim.OpUserDefined,
}

// defaultTokenChoices are the static defaults users tend to request (the
// paper's example default is 125 tokens).
var defaultTokenChoices = []int{10, 25, 50, 100, 125, 150, 200, 250, 300, 500, 1000, 2000}

// rowsPerTaskSecond calibrates task durations: how many row·weight units a
// token processes per second.
const rowsPerTaskSecond = 45_000

// rowsPerPartition calibrates stage widths: target rows per task.
const rowsPerPartition = 260_000

// instantiate builds a concrete job from a template. Recurring instances
// vary their input size run-over-run (the input-growth effect that makes
// stale historical skylines unreliable, §1).
func (g *Generator) instantiate(t *template, id string, submit time.Time) *scopesim.Job {
	rng := g.rng
	input := t.baseInput * math.Exp(rng.NormFloat64()*0.3) * g.cfg.SizeScale * g.drift

	job := &scopesim.Job{
		ID:             id,
		Template:       t.name,
		VirtualCluster: t.vc,
		SubmitTime:     submit,
	}

	// Per-stage dataflow: rows entering a stage are the sum of rows leaving
	// its dependency stages (leaves read the input).
	stageOutRows := make([]float64, len(t.stages))
	opID := 0
	var prevLastOp = make([]int, len(t.stages)) // last operator of each stage
	for s, ts := range t.stages {
		inRows := input
		if len(ts.deps) > 0 {
			inRows = 0
			for _, d := range ts.deps {
				inRows += stageOutRows[d]
			}
		}
		if inRows < 1 {
			inRows = 1
		}
		outRows := inRows * ts.selectivity
		if outRows < 1 {
			outRows = 1
		}
		stageOutRows[s] = outRows

		// Stage width: enough tasks to keep rows-per-task near target,
		// scaled by the template's width factor.
		tasks := int(math.Ceil(inRows / rowsPerPartition * ts.widthFactor * 4))
		if tasks < 1 {
			tasks = 1
		}
		if tasks > 6000 {
			tasks = 6000
		}

		// Work per task: rows per task × operator weights × row length factor.
		var weight float64
		for _, k := range ts.opKinds {
			weight += k.CostWeight()
		}
		rowFactor := (0.5 + t.rowLength/300) * t.complexity
		taskSec := int(math.Round(inRows / float64(tasks) * weight * rowFactor / rowsPerTaskSecond))
		if taskSec < 1 {
			taskSec = 1
		}
		if taskSec > 3600 {
			taskSec = 3600
		}

		stage := scopesim.Stage{ID: s, Tasks: tasks, TaskSeconds: taskSec, Deps: append([]int(nil), ts.deps...)}

		// Build this stage's operators as a pipeline; the first operator of
		// a dependent stage consumes the last operator of each dep stage.
		rows := inRows
		perOpSel := math.Pow(ts.selectivity, 1/float64(len(ts.opKinds)))
		for o, kind := range ts.opKinds {
			op := scopesim.Operator{
				ID:           opID,
				Kind:         kind,
				Partitioning: ts.parts[o],
				Stage:        s,
			}
			if o == 0 {
				for _, d := range ts.deps {
					op.Children = append(op.Children, prevLastOp[d])
				}
			} else {
				op.Children = []int{opID - 1}
			}
			outOp := rows * perOpSel
			op.True = scopesim.OpMetrics{
				OutputCardinality:        outOp,
				LeafInputCardinality:     input,
				ChildrenInputCardinality: rows,
				AvgRowLength:             t.rowLength,
				ExclusiveCost:            rows * kind.CostWeight() * t.complexity,
				NumPartitions:            tasks,
				NumPartitioningColumns:   1 + rng.Intn(3),
				NumSortColumns:           sortColumns(kind, rng),
			}
			op.Est = g.noisyEstimates(op.True)
			stage.Operators = append(stage.Operators, opID)
			job.Operators = append(job.Operators, op)
			rows = outOp
			opID++
		}
		prevLastOp[s] = opID - 1
		job.Stages = append(job.Stages, stage)
	}
	fillCumulativeCosts(job)

	// Token request: users pick the template default; a minority size the
	// request near (occasionally below) the job's actual peak parallelism.
	peak := job.PeakParallelism()
	switch {
	case rng.Float64() < 0.7:
		job.RequestedTokens = t.defaultTokens
	case rng.Float64() < 0.5:
		job.RequestedTokens = peak + rng.Intn(peak/2+2)
	default:
		job.RequestedTokens = peak/2 + 1 + rng.Intn(peak/2+1)
	}
	if job.RequestedTokens < 1 {
		job.RequestedTokens = 1
	}
	return job
}

func sortColumns(k scopesim.OpKind, rng *rand.Rand) int {
	switch k {
	case scopesim.OpSort, scopesim.OpTopSort, scopesim.OpMergeJoin, scopesim.OpStreamGroupBy, scopesim.OpWindow:
		return 1 + rng.Intn(4)
	default:
		return 0
	}
}

// fillCumulativeCosts computes subtree and total costs for both true and
// estimated metrics from the exclusive costs and the DAG.
func fillCumulativeCosts(job *scopesim.Job) {
	n := len(job.Operators)
	// Subtree cost via memoized DFS over children (the DAG is small).
	memoT := make([]float64, n)
	memoE := make([]float64, n)
	done := make([]bool, n)
	var walk func(i int) (float64, float64)
	walk = func(i int) (float64, float64) {
		if done[i] {
			return memoT[i], memoE[i]
		}
		done[i] = true // set before recursion; Validate guarantees acyclicity
		tt := job.Operators[i].True.ExclusiveCost
		ee := job.Operators[i].Est.ExclusiveCost
		for _, c := range job.Operators[i].Children {
			ct, ce := walk(c)
			tt += ct
			ee += ce
		}
		memoT[i], memoE[i] = tt, ee
		return tt, ee
	}
	var totalT, totalE float64
	for i := range job.Operators {
		t, e := walk(i)
		job.Operators[i].True.SubtreeCost = t
		job.Operators[i].Est.SubtreeCost = e
		totalT += job.Operators[i].True.ExclusiveCost
		totalE += job.Operators[i].Est.ExclusiveCost
	}
	for i := range job.Operators {
		job.Operators[i].True.TotalCost = totalT
		job.Operators[i].Est.TotalCost = totalE
	}
}

// noisyEstimates derives compile-time estimates from true metrics by
// applying multiplicative log-normal noise — the cardinality-estimation
// error every optimizer suffers, which bounds achievable model accuracy.
func (g *Generator) noisyEstimates(truth scopesim.OpMetrics) scopesim.OpMetrics {
	noise := func(v float64) float64 {
		return v * math.Exp(g.rng.NormFloat64()*g.cfg.EstimateSigma)
	}
	est := truth
	est.OutputCardinality = noise(truth.OutputCardinality)
	est.LeafInputCardinality = noise(truth.LeafInputCardinality)
	est.ChildrenInputCardinality = noise(truth.ChildrenInputCardinality)
	est.AvgRowLength = noise(truth.AvgRowLength)
	est.ExclusiveCost = noise(truth.ExclusiveCost)
	// Partition counts are planner decisions, known exactly at compile time.
	return est
}
