package workload

import (
	"testing"

	"tasq/internal/scopesim"
	"tasq/internal/stats"
)

func TestGeneratedJobsAreValid(t *testing.T) {
	g := New(TestConfig(1))
	for _, j := range g.Workload(200) {
		if err := j.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
		if j.RequestedTokens < 1 {
			t.Fatalf("job %s requested %d tokens", j.ID, j.RequestedTokens)
		}
		if j.NumOperators() == 0 || j.NumStages() == 0 {
			t.Fatalf("job %s is empty", j.ID)
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	a := New(TestConfig(42)).Workload(20)
	b := New(TestConfig(42)).Workload(20)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].NumStages() != b[i].NumStages() ||
			a[i].RequestedTokens != b[i].RequestedTokens || a[i].TotalWork() != b[i].TotalWork() {
			t.Fatalf("job %d differs between same-seed generators", i)
		}
	}
	c := New(TestConfig(43)).Workload(20)
	same := true
	for i := range a {
		if a[i].TotalWork() != c[i].TotalWork() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestWorkloadMix(t *testing.T) {
	cfg := TestConfig(7)
	cfg.AdHocFraction = 0.5
	g := New(cfg)
	jobs := g.Workload(400)
	var adhoc, recurring int
	templates := map[string]int{}
	for _, j := range jobs {
		if j.Template == "" {
			adhoc++
		} else {
			recurring++
			templates[j.Template]++
		}
	}
	if adhoc < 120 || adhoc > 280 {
		t.Fatalf("ad-hoc count %d far from expected ~200 of 400", adhoc)
	}
	// Recurring jobs must actually recur.
	var repeats int
	for _, c := range templates {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("no template instantiated more than once")
	}
}

func TestRightSkewedDistributions(t *testing.T) {
	g := New(TestConfig(11))
	jobs := g.Workload(300)
	work := make([]float64, len(jobs))
	peaks := make([]float64, len(jobs))
	for i, j := range jobs {
		work[i] = float64(j.TotalWork())
		peaks[i] = float64(j.PeakParallelism())
	}
	// Right-skew: mean well above median, as the paper reports for both
	// run time (9.5 vs 3 minutes) and tokens (154 vs 54).
	if stats.Mean(work) < 1.3*stats.Median(work) {
		t.Fatalf("work not right-skewed: mean %.0f median %.0f", stats.Mean(work), stats.Median(work))
	}
	if stats.Mean(peaks) < 1.2*stats.Median(peaks) {
		t.Fatalf("peaks not right-skewed: mean %.0f median %.0f", stats.Mean(peaks), stats.Median(peaks))
	}
	if stats.Min(peaks) < 1 {
		t.Fatal("peak parallelism below 1")
	}
}

func TestEstimatesDifferFromTruth(t *testing.T) {
	g := New(TestConfig(3))
	jobs := g.Workload(50)
	var diff, total int
	for _, j := range jobs {
		for _, op := range j.Operators {
			total++
			if op.Est.OutputCardinality != op.True.OutputCardinality {
				diff++
			}
			// Planner decisions are exact.
			if op.Est.NumPartitions != op.True.NumPartitions {
				t.Fatal("partition counts must be known exactly at compile time")
			}
			if op.Est.OutputCardinality <= 0 || op.True.OutputCardinality <= 0 {
				t.Fatal("cardinalities must stay positive")
			}
		}
	}
	if float64(diff) < 0.9*float64(total) {
		t.Fatalf("only %d/%d operators have noisy estimates", diff, total)
	}
}

func TestZeroEstimateSigmaGivesExactEstimates(t *testing.T) {
	cfg := TestConfig(5)
	cfg.EstimateSigma = 0
	// New replaces invalid values; 0 is valid and must be preserved.
	g := New(cfg)
	for _, j := range g.Workload(10) {
		for _, op := range j.Operators {
			if op.Est.OutputCardinality != op.True.OutputCardinality {
				t.Fatal("sigma=0 must give exact estimates")
			}
		}
	}
}

func TestGeneratedJobsExecutable(t *testing.T) {
	g := New(TestConfig(9))
	var ex scopesim.Executor
	for _, j := range g.Workload(40) {
		res, err := ex.Run(j, j.RequestedTokens)
		if err != nil {
			t.Fatalf("job %s failed to execute: %v", j.ID, err)
		}
		if res.RuntimeSeconds < 1 {
			t.Fatalf("job %s ran in %ds", j.ID, res.RuntimeSeconds)
		}
		if res.Skyline.Area() != j.TotalWork() {
			t.Fatalf("job %s area %d != work %d", j.ID, res.Skyline.Area(), j.TotalWork())
		}
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	g := New(Config{Seed: 1}) // all other fields zero → defaults
	jobs := g.Workload(5)
	if len(jobs) != 5 {
		t.Fatal("generation with default config failed")
	}
	for _, j := range jobs {
		if j.SubmitTime.IsZero() {
			t.Fatal("submit time not set")
		}
		if j.VirtualCluster == "" {
			t.Fatal("virtual cluster not set")
		}
	}
}

func TestTokenRequestsClusterOnDefaults(t *testing.T) {
	g := New(TestConfig(13))
	jobs := g.Workload(300)
	defaults := map[int]bool{}
	for _, d := range defaultTokenChoices {
		defaults[d] = true
	}
	var onDefault int
	for _, j := range jobs {
		if defaults[j.RequestedTokens] {
			onDefault++
		}
	}
	// ~70% of users pick the template default (§1's user study).
	if float64(onDefault) < 0.5*float64(len(jobs)) {
		t.Fatalf("only %d/%d jobs use default token requests", onDefault, len(jobs))
	}
}

func TestSetInputDriftGrowsJobs(t *testing.T) {
	// Same seed: generate a stretch of jobs without drift, then regenerate
	// with drift and compare total work on the drifted stretch.
	base := New(TestConfig(77))
	baseJobs := base.Workload(120)

	drifted := New(TestConfig(77))
	drifted.Workload(60) // identical prefix consumes the same randomness
	drifted.SetInputDrift(1.5)
	driftedTail := drifted.Workload(60)

	var baseWork, driftWork int
	for i := 0; i < 60; i++ {
		baseWork += baseJobs[60+i].TotalWork()
		driftWork += driftedTail[i].TotalWork()
	}
	if float64(driftWork) < 1.2*float64(baseWork) {
		t.Fatalf("drifted work %d not clearly above base %d", driftWork, baseWork)
	}
	// Templates persist across the drift: recurring jobs still recur.
	var shared int
	seen := map[string]bool{}
	for _, j := range baseJobs[:60] {
		if j.Template != "" {
			seen[j.Template] = true
		}
	}
	for _, j := range driftedTail {
		if j.Template != "" && seen[j.Template] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no recurring templates survive the drift")
	}
	// Degenerate factor clamps instead of zeroing out the workload.
	drifted.SetInputDrift(0)
	if j := drifted.Job(); j.TotalWork() < 1 {
		t.Fatal("clamped drift produced empty job")
	}
}

// TestFullScalePopulationShape verifies the §5 population properties at
// production scale (SizeScale 1): right-skewed run times in the
// tens-of-seconds-to-hours band and right-skewed peak token usage with a
// median in the tens — the shape of the paper's 85K-job workload (run
// times 33s–21h with median 3 min; peaks 1–6,287 with median 54).
func TestFullScalePopulationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("executes a full-scale workload")
	}
	g := New(DefaultConfig(123))
	jobs := g.Workload(400)
	var ex scopesim.Executor
	var rts, peaks []float64
	for _, j := range jobs {
		res, err := ex.Run(j, j.RequestedTokens)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, float64(res.RuntimeSeconds))
		peaks = append(peaks, float64(res.Skyline.Peak()))
	}
	if med := stats.Median(rts); med < 30 || med > 600 {
		t.Fatalf("median run time %.0fs outside the minutes band", med)
	}
	if stats.Mean(rts) < 1.2*stats.Median(rts) {
		t.Fatalf("run times not right-skewed: mean %.0f median %.0f", stats.Mean(rts), stats.Median(rts))
	}
	if max := stats.Max(rts); max < 600 {
		t.Fatalf("no long-tail jobs: max run time %.0fs", max)
	}
	if med := stats.Median(peaks); med < 10 || med > 300 {
		t.Fatalf("median peak %.0f tokens outside the tens band", med)
	}
	if stats.Mean(peaks) < 1.2*stats.Median(peaks) {
		t.Fatalf("peaks not right-skewed: mean %.0f median %.0f", stats.Mean(peaks), stats.Median(peaks))
	}
}
