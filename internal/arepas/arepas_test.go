package arepas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasq/internal/skyline"
)

func TestSimulateRejectsBadInput(t *testing.T) {
	if _, err := Simulate(skyline.Skyline{1, 2}, 0); err == nil {
		t.Fatal("allocation 0 accepted")
	}
	if _, err := Simulate(skyline.Skyline{1, -1}, 2); err == nil {
		t.Fatal("negative skyline accepted")
	}
}

func TestSimulateEmpty(t *testing.T) {
	got, err := Simulate(skyline.Skyline{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runtime() != 0 {
		t.Fatalf("empty skyline simulated to %v", got)
	}
}

func TestSimulateAtOrAbovePeakIsIdentity(t *testing.T) {
	s := skyline.Skyline{2, 7, 3, 7, 1}
	for _, alloc := range []int{7, 8, 100} {
		got, err := Simulate(s, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(s) {
			t.Fatalf("alloc %d changed runtime: %v", alloc, got)
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("alloc %d changed shape at %d: %v", alloc, i, got)
			}
		}
	}
}

func TestSimulateIdentityReturnsCopy(t *testing.T) {
	s := skyline.Skyline{1, 2, 3}
	got, _ := Simulate(s, 10)
	got[0] = 99
	if s[0] != 1 {
		t.Fatal("Simulate must not alias the input skyline")
	}
}

// TestSimulatePaperFigure7 reproduces the paper's Figure 7 scenario: a flat
// section at 7 tokens for 4 seconds (28 token-seconds) capped at 3 tokens
// must stretch to ceil(28/3) = 10 seconds.
func TestSimulatePaperFigure7(t *testing.T) {
	s := skyline.Skyline{1, 1, 7, 7, 7, 7, 1, 1}
	got, err := Simulate(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runtime() != 2+10+2 {
		t.Fatalf("runtime = %d, want 14", got.Runtime())
	}
	if got.Area() != s.Area() {
		t.Fatalf("area changed: %d -> %d", s.Area(), got.Area())
	}
	// Leading and trailing under-sections are copied unchanged (Figure 6).
	if got[0] != 1 || got[1] != 1 || got[len(got)-1] != 1 || got[len(got)-2] != 1 {
		t.Fatalf("under-allocated sections changed: %v", got)
	}
	// The stretched middle runs flat at the new allocation except for the
	// remainder second (28 = 9×3 + 1).
	for i := 2; i < 11; i++ {
		if got[i] != 3 {
			t.Fatalf("stretched section not flat at 3: %v", got)
		}
	}
	if got[11] != 1 {
		t.Fatalf("remainder second = %d, want 1", got[11])
	}
}

func TestSimulateAreaPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(300), 1+rng.Intn(60))
		alloc := 1 + rng.Intn(70)
		got, err := Simulate(s, alloc)
		if err != nil {
			return false
		}
		return got.Area() == s.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateNeverExceedsAllocationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(300), 1+rng.Intn(60))
		alloc := 1 + rng.Intn(70)
		got, err := Simulate(s, alloc)
		if err != nil {
			return false
		}
		if s.Peak() <= alloc {
			return true // identity case: original may legitimately exceed nothing
		}
		for _, v := range got {
			if v > alloc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRuntimeRoughlyMonotoneProperty(t *testing.T) {
	// Run time must not increase with more tokens, up to the per-section
	// ceiling slack (each over-section can round up by at most one second).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(200), 1+rng.Intn(40))
		a1 := 1 + rng.Intn(40)
		a2 := a1 + 1 + rng.Intn(10)
		r1, err1 := SimulateRuntime(s, a1)
		r2, err2 := SimulateRuntime(s, a2)
		if err1 != nil || err2 != nil {
			return false
		}
		slack := len(s.Sections(a2)) // ceiling can cost ≤1s per section
		return r2 <= r1+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateUnderSectionsUnchangedProperty(t *testing.T) {
	// Figure 6's guarantee: every under-allocation section appears intact
	// (same values, same order) in the simulated skyline.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(120), 1+rng.Intn(30))
		alloc := 1 + rng.Intn(35)
		got, err := Simulate(s, alloc)
		if err != nil {
			return false
		}
		// Walk the original sections and locate each in the output; the
		// simulator preserves section order.
		pos := 0
		for _, sec := range s.Sections(alloc) {
			if sec.Over {
				var area int
				for t := sec.Start; t < sec.End; t++ {
					area += s[t]
				}
				pos += (area + alloc - 1) / alloc
				continue
			}
			for t := sec.Start; t < sec.End; t++ {
				if got[pos] != s[t] {
					return false
				}
				pos++
			}
		}
		return pos == got.Runtime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	s := skyline.Skyline{5, 5, 5, 5}
	pts, err := Sweep(s, []int{5, 4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRuntimes := []int{4, 5, 10, 20}
	for i, p := range pts {
		if p.Runtime != wantRuntimes[i] {
			t.Fatalf("sweep[%d] = %+v, want runtime %d", i, p, wantRuntimes[i])
		}
	}
}

func TestSweepPropagatesError(t *testing.T) {
	if _, err := Sweep(skyline.Skyline{1}, []int{1, 0}); err == nil {
		t.Fatal("sweep must propagate simulation errors")
	}
}

func TestFractionGrid(t *testing.T) {
	grid := FractionGrid(100, []float64{0.2, 0.5, 1.0})
	want := []int{20, 50, 100}
	if len(grid) != len(want) {
		t.Fatalf("grid = %v, want %v", grid, want)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid = %v, want %v", grid, want)
		}
	}
}

func TestFractionGridDeduplicatesAndClamps(t *testing.T) {
	grid := FractionGrid(3, []float64{0.1, 0.2, 0.5, 1.0, 1.5})
	// 0.1×3 and 0.2×3 both clamp/round to values that collide; ensure
	// uniqueness, bounds, and ascending order.
	seen := map[int]bool{}
	prev := 0
	for _, g := range grid {
		if g < 1 || g > 3 {
			t.Fatalf("grid value %d out of [1,3]", g)
		}
		if seen[g] {
			t.Fatalf("duplicate grid value %d in %v", g, grid)
		}
		if g <= prev {
			t.Fatalf("grid not ascending: %v", grid)
		}
		seen[g] = true
		prev = g
	}
	if FractionGrid(0, []float64{0.5}) != nil {
		t.Fatal("reference < 1 must give nil grid")
	}
}

func TestAugmentForXGBoostUnderAllocated(t *testing.T) {
	// Peak 10 == allocation 10: no over-allocation points.
	s := skyline.Skyline{10, 10, 2, 2}
	pts, err := AugmentForXGBoost(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (observed + 80%% + 60%%): %+v", len(pts), pts)
	}
	if pts[0].Synthetic || pts[0].Tokens != 10 || pts[0].Runtime != 4 {
		t.Fatalf("observed point wrong: %+v", pts[0])
	}
	if pts[1].Tokens != 8 || !pts[1].Synthetic {
		t.Fatalf("80%% point wrong: %+v", pts[1])
	}
	if pts[2].Tokens != 6 || !pts[2].Synthetic {
		t.Fatalf("60%% point wrong: %+v", pts[2])
	}
	// Fewer tokens must not run faster.
	if pts[1].Runtime < pts[0].Runtime || pts[2].Runtime < pts[1].Runtime {
		t.Fatalf("augmented runtimes not non-decreasing as tokens shrink: %+v", pts)
	}
}

func TestAugmentForXGBoostOverAllocated(t *testing.T) {
	// Peak 5 < allocation 10: adds floored points at 120% and 140% of peak.
	s := skyline.Skyline{5, 3, 2}
	pts, err := AugmentForXGBoost(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5: %+v", len(pts), pts)
	}
	if pts[3].Tokens != 6 || pts[3].Runtime != 3 {
		t.Fatalf("120%%-of-peak point = %+v, want tokens 6 runtime 3", pts[3])
	}
	if pts[4].Tokens != 7 || pts[4].Runtime != 3 {
		t.Fatalf("140%%-of-peak point = %+v, want tokens 7 runtime 3", pts[4])
	}
}

func TestAugmentForXGBoostBadAllocation(t *testing.T) {
	if _, err := AugmentForXGBoost(skyline.Skyline{1}, 0); err == nil {
		t.Fatal("allocation 0 accepted")
	}
}

func randomSkyline(rng *rand.Rand, n, maxTok int) skyline.Skyline {
	s := make(skyline.Skyline, n)
	for i := range s {
		s[i] = rng.Intn(maxTok + 1)
	}
	return s
}
