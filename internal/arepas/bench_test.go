package arepas

import (
	"math/rand"
	"testing"

	"tasq/internal/skyline"
)

func benchSkyline(n int) skyline.Skyline {
	rng := rand.New(rand.NewSource(1))
	s := make(skyline.Skyline, n)
	for i := range s {
		s[i] = rng.Intn(200)
	}
	return s
}

func BenchmarkSimulate(b *testing.B) {
	s := benchSkyline(3600) // an hour-long job
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(s, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	s := benchSkyline(1800)
	grid := FractionGrid(200, GridFractions)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(s, grid); err != nil {
			b.Fatal(err)
		}
	}
}
