// Package arepas implements AREPAS — the Area-Preserving Allocation
// Simulator of the TASQ paper (§3, Algorithm 1). Given a job's observed
// resource-usage skyline, AREPAS synthesizes the skyline (and hence the run
// time) the same job would have with a different token allocation, under
// the core assumption that the total amount of work — the area under the
// skyline in token-seconds — stays constant.
//
// The simulator is deterministic and purely geometric: sections of the
// skyline at or under the new allocation are copied unchanged (Figure 6);
// sections over the new allocation are flattened to the allocation level
// and lengthened so their area is preserved (Figure 7).
package arepas

import (
	"errors"
	"fmt"

	"tasq/internal/skyline"
)

// ErrNonPositiveAllocation is returned when simulating with a token count
// less than one; no work can complete with zero tokens.
var ErrNonPositiveAllocation = errors.New("arepas: allocation must be at least 1 token")

// Simulate implements Algorithm 1: it returns the simulated skyline of the
// job whose observed skyline is orig, when run with newAlloc tokens.
//
// Sections of orig that fit under newAlloc keep their shape; sections that
// exceed it are replaced by a flat run at newAlloc tokens whose length is
// ceil(area/newAlloc) seconds — the right-nearest integer approximation the
// paper uses, so no token-second of work is lost to rounding. Simulating at
// or above the observed peak returns the skyline unchanged (a copy).
func Simulate(orig skyline.Skyline, newAlloc int) (skyline.Skyline, error) {
	if newAlloc < 1 {
		return nil, ErrNonPositiveAllocation
	}
	if err := orig.Validate(); err != nil {
		return nil, fmt.Errorf("arepas: invalid input skyline: %w", err)
	}
	if len(orig) == 0 {
		return skyline.Skyline{}, nil
	}
	if orig.Peak() <= newAlloc {
		return orig.Clone(), nil
	}
	out := make(skyline.Skyline, 0, len(orig))
	for _, sec := range orig.Sections(newAlloc) {
		if !sec.Over {
			out = append(out, orig[sec.Start:sec.End]...)
			continue
		}
		var area int
		for t := sec.Start; t < sec.End; t++ {
			area += orig[t]
		}
		// Lengthen the section: flat at newAlloc for ceil(area/newAlloc)
		// seconds preserves the section's area up to the final second.
		newLen := (area + newAlloc - 1) / newAlloc
		for i := 0; i < newLen; i++ {
			out = append(out, newAlloc)
		}
		// The final second may be partially filled; adjust it so the
		// section's area is exactly preserved.
		if rem := area % newAlloc; rem != 0 {
			out[len(out)-1] = rem
		}
	}
	return out, nil
}

// SimulateRuntime returns only the simulated run time in seconds for the
// job at the given allocation.
func SimulateRuntime(orig skyline.Skyline, newAlloc int) (int, error) {
	s, err := Simulate(orig, newAlloc)
	if err != nil {
		return 0, err
	}
	return s.Runtime(), nil
}

// Point is one (allocation, run time) sample of a performance
// characteristic curve produced by simulation.
type Point struct {
	Tokens  int
	Runtime int
}

// Sweep simulates the job at every allocation in tokens and returns the
// resulting curve points in the same order. Allocations must be ≥ 1.
func Sweep(orig skyline.Skyline, tokens []int) ([]Point, error) {
	out := make([]Point, 0, len(tokens))
	for _, tok := range tokens {
		rt, err := SimulateRuntime(orig, tok)
		if err != nil {
			return nil, fmt.Errorf("arepas: sweep at %d tokens: %w", tok, err)
		}
		out = append(out, Point{Tokens: tok, Runtime: rt})
	}
	return out, nil
}

// GridFractions is the default augmentation grid used to synthesize PCC
// training targets: fractions of the observed (reference) allocation at
// which the job is simulated. It spans the aggressive-allocation region the
// paper studies (down to 20% of the reference) plus two sub-20% points so
// heavily over-allocated jobs — whose skylines are flat over most of the
// request — still contribute a sloped region to the fit.
var GridFractions = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// FractionGrid converts reference allocation and fractions into distinct
// integer token counts ≥ 1, preserving ascending order of fractions.
func FractionGrid(reference int, fractions []float64) []int {
	if reference < 1 {
		return nil
	}
	seen := make(map[int]bool, len(fractions))
	out := make([]int, 0, len(fractions))
	for _, f := range fractions {
		tok := int(f * float64(reference))
		if tok < 1 {
			tok = 1
		}
		if tok > reference {
			tok = reference
		}
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// AugmentationPoint is a synthesized training observation for the XGBoost
// model: run time at a token count other than the observed one.
type AugmentationPoint struct {
	Tokens  int
	Runtime int
	// Synthetic marks points produced by simulation rather than observed
	// telemetry (the observed reference point is not synthetic).
	Synthetic bool
}

// AugmentForXGBoost produces the paper's §4.4 augmentation set for a job
// with the given observed skyline and allocated (requested) token count:
// the observed point, simulated points at 80% and 60% of the observed
// allocation, and — for over-allocated jobs (peak usage below allocation) —
// points at 120% and 140% of the peak with run time floored at the
// peak-allocation run time (extra tokens beyond the peak cannot speed the
// job up).
func AugmentForXGBoost(orig skyline.Skyline, allocated int) ([]AugmentationPoint, error) {
	if allocated < 1 {
		return nil, ErrNonPositiveAllocation
	}
	out := []AugmentationPoint{{Tokens: allocated, Runtime: orig.Runtime()}}
	for _, f := range []float64{0.8, 0.6} {
		tok := int(f * float64(allocated))
		if tok < 1 {
			tok = 1
		}
		rt, err := SimulateRuntime(orig, tok)
		if err != nil {
			return nil, err
		}
		out = append(out, AugmentationPoint{Tokens: tok, Runtime: rt, Synthetic: true})
	}
	peak := orig.Peak()
	if peak > 0 && peak < allocated {
		// Over-allocated job: beyond the peak the skyline — and the run
		// time — cannot improve, so the floor is the peak-allocation run
		// time (== the observed run time, since usage never hit the cap).
		floor := orig.Runtime()
		for _, f := range []float64{1.2, 1.4} {
			tok := int(f * float64(peak))
			if tok < 1 {
				tok = 1
			}
			out = append(out, AugmentationPoint{Tokens: tok, Runtime: floor, Synthetic: true})
		}
	}
	return out, nil
}
