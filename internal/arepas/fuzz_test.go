package arepas

import (
	"errors"
	"testing"

	"tasq/internal/skyline"
)

// skylineFromBytes decodes fuzz data into a valid (non-negative) skyline,
// capped so a 1-token simulation cannot balloon the output: with ≤ 4096
// seconds of ≤ 255 tokens each, the flattened skyline stays ≤ ~1M seconds.
func skylineFromBytes(data []byte) skyline.Skyline {
	if len(data) > 4096 {
		data = data[:4096]
	}
	s := make(skyline.Skyline, len(data))
	for i, b := range data {
		s[i] = int(b)
	}
	return s
}

// FuzzArepasSimulate checks Algorithm 1's invariants on arbitrary skylines
// and allocations: the simulated skyline is valid, never exceeds the new
// allocation, preserves the area under the skyline exactly (the remainder
// fix on each flattened section's final second), and never gets faster
// with fewer tokens.
func FuzzArepasSimulate(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add([]byte{0, 0, 0}, 2)
	f.Add([]byte{10, 20, 30, 20, 10}, 15)
	f.Add([]byte{255, 255, 1, 255}, 7)
	f.Add([]byte{5, 5, 5, 5}, 100)
	f.Add([]byte{1}, -3)
	f.Add([]byte{200, 0, 200, 0, 200}, 1)
	f.Fuzz(func(t *testing.T, data []byte, newAlloc int) {
		orig := skylineFromBytes(data)
		res, err := Simulate(orig, newAlloc)
		if newAlloc < 1 {
			if !errors.Is(err, ErrNonPositiveAllocation) {
				t.Fatalf("alloc %d: got err %v, want ErrNonPositiveAllocation", newAlloc, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("alloc %d: unexpected error %v", newAlloc, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("alloc %d: simulated skyline invalid: %v", newAlloc, err)
		}
		if peak := res.Peak(); peak > newAlloc {
			t.Fatalf("alloc %d: simulated peak %d exceeds allocation", newAlloc, peak)
		}
		if got, want := res.Area(), orig.Area(); got != want {
			t.Fatalf("alloc %d: area %d, want %d (area must be preserved)", newAlloc, got, want)
		}
		if res.Runtime() < orig.Runtime() {
			t.Fatalf("alloc %d: runtime %d < original %d (fewer tokens cannot speed the job up)",
				newAlloc, res.Runtime(), orig.Runtime())
		}
		// Simulating at the original peak (or above) must be the identity.
		if newAlloc >= orig.Peak() && res.Runtime() != orig.Runtime() {
			t.Fatalf("alloc %d ≥ peak %d: runtime changed %d -> %d",
				newAlloc, orig.Peak(), orig.Runtime(), res.Runtime())
		}
	})
}
