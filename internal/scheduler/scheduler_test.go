package scheduler

import (
	"testing"

	"tasq/internal/skyline"
)

func TestPolicyNames(t *testing.T) {
	for _, p := range []PolicyKind{PolicyDefault, PolicyPeak, PolicyAdaptivePeak, PolicyOptimal} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestAccountPolicyFigure1Ordering(t *testing.T) {
	// Figure 1's qualitative claim: Default ≥ Peak ≥ AdaptivePeak ≥ usage.
	sky := skyline.Skyline{10, 40, 80, 30, 5, 60, 20}
	def, err := AccountPolicy(PolicyDefault, sky, 125, 0)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := AccountPolicy(PolicyPeak, sky, 125, 0)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AccountPolicy(PolicyAdaptivePeak, sky, 125, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(def.AllocatedTokenSeconds >= peak.AllocatedTokenSeconds &&
		peak.AllocatedTokenSeconds >= adaptive.AllocatedTokenSeconds &&
		adaptive.AllocatedTokenSeconds >= sky.Area()) {
		t.Fatalf("policy ordering broken: default %d peak %d adaptive %d used %d",
			def.AllocatedTokenSeconds, peak.AllocatedTokenSeconds, adaptive.AllocatedTokenSeconds, sky.Area())
	}
	if def.OverAllocation != def.AllocatedTokenSeconds-sky.Area() {
		t.Fatal("over-allocation arithmetic wrong")
	}
	if def.Utilization() <= 0 || def.Utilization() > 1 {
		t.Fatalf("utilization %v", def.Utilization())
	}
	if peak.RequestTokens != sky.Peak() {
		t.Fatalf("peak request %d, want %d", peak.RequestTokens, sky.Peak())
	}
}

func TestAccountPolicyOptimal(t *testing.T) {
	// Optimal allocation at 50 tokens with the re-simulated skyline.
	sky := skyline.Skyline{50, 50, 30, 20}
	acc, err := AccountPolicy(PolicyOptimal, sky, 125, 50)
	if err != nil {
		t.Fatal(err)
	}
	if acc.RequestTokens != 50 {
		t.Fatalf("request %d", acc.RequestTokens)
	}
	if acc.AllocatedTokenSeconds != 50*4 {
		t.Fatalf("allocated %d", acc.AllocatedTokenSeconds)
	}
}

func TestAccountPolicyErrors(t *testing.T) {
	sky := skyline.Skyline{1}
	if _, err := AccountPolicy(PolicyDefault, sky, 0, 0); err == nil {
		t.Fatal("default 0 accepted")
	}
	if _, err := AccountPolicy(PolicyOptimal, sky, 10, 0); err == nil {
		t.Fatal("optimal 0 accepted")
	}
	if _, err := AccountPolicy(PolicyKind(99), sky, 10, 10); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAccountPolicyOveruseClampsToZeroWaste(t *testing.T) {
	sky := skyline.Skyline{20, 20} // used 40 > allocated 10×2
	acc, err := AccountPolicy(PolicyDefault, sky, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.OverAllocation != 0 {
		t.Fatalf("over-allocation %d, want 0", acc.OverAllocation)
	}
}

func TestClusterRunSerializesWhenFull(t *testing.T) {
	c := &Cluster{Capacity: 100}
	subs := []Submission{
		{ID: "a", ArrivalSecond: 0, Tokens: 100, DurationSeconds: 10},
		{ID: "b", ArrivalSecond: 0, Tokens: 100, DurationSeconds: 10},
		{ID: "c", ArrivalSecond: 0, Tokens: 100, DurationSeconds: 10},
	}
	scheds, err := c.Run(subs)
	if err != nil {
		t.Fatal(err)
	}
	if scheds[0].WaitSeconds != 0 || scheds[1].WaitSeconds != 10 || scheds[2].WaitSeconds != 20 {
		t.Fatalf("waits %v", scheds)
	}
}

func TestClusterRunParallelWhenFits(t *testing.T) {
	c := &Cluster{Capacity: 100}
	subs := []Submission{
		{ID: "a", ArrivalSecond: 0, Tokens: 50, DurationSeconds: 10},
		{ID: "b", ArrivalSecond: 0, Tokens: 50, DurationSeconds: 10},
	}
	scheds, err := c.Run(subs)
	if err != nil {
		t.Fatal(err)
	}
	if scheds[0].WaitSeconds != 0 || scheds[1].WaitSeconds != 0 {
		t.Fatalf("parallel jobs waited: %v", scheds)
	}
}

func TestClusterRunRespectsArrivals(t *testing.T) {
	c := &Cluster{Capacity: 10}
	subs := []Submission{
		{ID: "late", ArrivalSecond: 100, Tokens: 5, DurationSeconds: 5},
		{ID: "early", ArrivalSecond: 0, Tokens: 5, DurationSeconds: 5},
	}
	scheds, err := c.Run(subs)
	if err != nil {
		t.Fatal(err)
	}
	if scheds[0].StartSecond != 100 {
		t.Fatalf("late job started at %d", scheds[0].StartSecond)
	}
	if scheds[1].StartSecond != 0 {
		t.Fatalf("early job started at %d", scheds[1].StartSecond)
	}
}

func TestClusterRunErrors(t *testing.T) {
	c := &Cluster{}
	if _, err := c.Run(nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
	c = &Cluster{Capacity: 10}
	if _, err := c.Run([]Submission{{ID: "big", Tokens: 20, DurationSeconds: 1}}); err == nil {
		t.Fatal("oversize request accepted")
	}
	if _, err := c.Run([]Submission{{ID: "neg", Tokens: 5, DurationSeconds: -1}}); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestSmallerRequestsReduceWait(t *testing.T) {
	// The §1 motivation: shrinking token requests lowers queueing delay.
	c := &Cluster{Capacity: 100}
	var fat, thin []Submission
	for i := 0; i < 20; i++ {
		fat = append(fat, Submission{ID: "f", ArrivalSecond: i, Tokens: 80, DurationSeconds: 30})
		thin = append(thin, Submission{ID: "t", ArrivalSecond: i, Tokens: 40, DurationSeconds: 33})
	}
	fs, err := c.Run(fat)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := c.Run(thin)
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(thin, ts).MeanWaitSeconds >= Summarize(fat, fs).MeanWaitSeconds {
		t.Fatalf("thin requests waited %.1fs, fat %.1fs",
			Summarize(thin, ts).MeanWaitSeconds, Summarize(fat, fs).MeanWaitSeconds)
	}
}

func TestSummarize(t *testing.T) {
	subs := []Submission{{Tokens: 10, DurationSeconds: 5}, {Tokens: 20, DurationSeconds: 2}}
	scheds := []Scheduled{
		{WaitSeconds: 4, EndSecond: 9},
		{WaitSeconds: 0, EndSecond: 11},
	}
	st := Summarize(subs, scheds)
	if st.MeanWaitSeconds != 2 || st.MaxWaitSeconds != 4 || st.MakespanSeconds != 11 {
		t.Fatalf("stats %+v", st)
	}
	if st.TotalTokenSeconds != 10*5+20*2 {
		t.Fatalf("token seconds %d", st.TotalTokenSeconds)
	}
	if got := Summarize(nil, nil); got.MeanWaitSeconds != 0 {
		t.Fatal("empty summarize must be zero")
	}
}
