// Package scheduler models the resource-allocation side of the paper: the
// allocation policies compared in Figure 1 (Default, Peak, Adaptive Peak,
// and TASQ's optimal sub-peak allocation) with their over-allocation
// accounting, and a token-capacity FCFS cluster simulator that quantifies
// the queueing benefit of requesting fewer tokens (§1: "utilizing fewer
// tokens reduces job wait time and improves the overall resource
// availability for other jobs in the cluster").
package scheduler

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"tasq/internal/skyline"
)

// PolicyKind identifies an allocation policy.
type PolicyKind int

// The policies of Figure 1 plus TASQ's optimal allocation.
const (
	PolicyDefault PolicyKind = iota
	PolicyPeak
	PolicyAdaptivePeak
	PolicyOptimal
)

// String names the policy as in Figure 1.
func (p PolicyKind) String() string {
	switch p {
	case PolicyPeak:
		return "Peak Allocation"
	case PolicyAdaptivePeak:
		return "Adaptive Peak Allocation"
	case PolicyOptimal:
		return "Optimal Allocation"
	default:
		return "Default Allocation"
	}
}

// PolicyAccounting reports how a policy would have provisioned one job run.
type PolicyAccounting struct {
	Policy PolicyKind
	// AllocatedTokenSeconds is the total provisioned capacity.
	AllocatedTokenSeconds int
	// UsedTokenSeconds is the skyline area.
	UsedTokenSeconds int
	// OverAllocation = Allocated − Used.
	OverAllocation int
	// RequestTokens is the (initial) token request under the policy.
	RequestTokens int
}

// Utilization returns used/allocated capacity (0 when nothing allocated).
func (a PolicyAccounting) Utilization() float64 {
	if a.AllocatedTokenSeconds == 0 {
		return 0
	}
	return float64(a.UsedTokenSeconds) / float64(a.AllocatedTokenSeconds)
}

// AccountPolicy computes the provisioning accounting for a job run with
// the given observed skyline. defaultTokens is the user's request (Default
// policy); optimalTokens is TASQ's predicted allocation (Optimal policy;
// ignored for other kinds). For the Optimal policy the skyline should be
// the run at that allocation.
func AccountPolicy(kind PolicyKind, sky skyline.Skyline, defaultTokens, optimalTokens int) (PolicyAccounting, error) {
	used := sky.Area()
	runtime := sky.Runtime()
	acc := PolicyAccounting{Policy: kind, UsedTokenSeconds: used}
	switch kind {
	case PolicyDefault:
		if defaultTokens < 1 {
			return acc, fmt.Errorf("scheduler: default allocation %d", defaultTokens)
		}
		acc.RequestTokens = defaultTokens
		acc.AllocatedTokenSeconds = defaultTokens * runtime
	case PolicyPeak:
		acc.RequestTokens = sky.Peak()
		acc.AllocatedTokenSeconds = sky.Peak() * runtime
	case PolicyAdaptivePeak:
		acc.RequestTokens = sky.Peak()
		acc.AllocatedTokenSeconds = sky.AdaptivePeakAllocation()
	case PolicyOptimal:
		if optimalTokens < 1 {
			return acc, fmt.Errorf("scheduler: optimal allocation %d", optimalTokens)
		}
		acc.RequestTokens = optimalTokens
		acc.AllocatedTokenSeconds = optimalTokens * runtime
	default:
		return acc, fmt.Errorf("scheduler: unknown policy %d", int(kind))
	}
	acc.OverAllocation = acc.AllocatedTokenSeconds - used
	if acc.OverAllocation < 0 {
		// Usage above the nominal allocation (errant telemetry) counts as
		// zero waste rather than negative.
		acc.OverAllocation = 0
	}
	return acc, nil
}

// Submission is one job entering the cluster queue: it requires Tokens
// guaranteed tokens for DurationSeconds starting when admitted.
type Submission struct {
	ID              string
	ArrivalSecond   int
	Tokens          int
	DurationSeconds int
}

// Scheduled reports when a submission ran.
type Scheduled struct {
	ID          string
	StartSecond int
	WaitSeconds int
	EndSecond   int
}

// Cluster is a fixed-capacity token pool with FCFS admission: a job is
// admitted when its full token request is free; later arrivals cannot jump
// the queue (no backfilling), which models SCOPE's guaranteed-token
// admission.
type Cluster struct {
	Capacity int
}

// Run simulates the submissions and returns their schedules in input order.
func (c *Cluster) Run(subs []Submission) ([]Scheduled, error) {
	if c.Capacity < 1 {
		return nil, errors.New("scheduler: cluster capacity must be positive")
	}
	for _, s := range subs {
		if s.Tokens < 1 || s.Tokens > c.Capacity {
			return nil, fmt.Errorf("scheduler: job %s requests %d tokens of capacity %d", s.ID, s.Tokens, c.Capacity)
		}
		if s.DurationSeconds < 0 || s.ArrivalSecond < 0 {
			return nil, fmt.Errorf("scheduler: job %s has negative time", s.ID)
		}
	}
	// FCFS by arrival (stable for ties: input order).
	order := make([]int, len(subs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return subs[order[a]].ArrivalSecond < subs[order[b]].ArrivalSecond
	})

	out := make([]Scheduled, len(subs))
	free := c.Capacity
	releases := &releaseHeap{}
	now := 0
	for _, idx := range order {
		s := subs[idx]
		if s.ArrivalSecond > now {
			now = s.ArrivalSecond
		}
		// Advance time until the request fits.
		for free < s.Tokens {
			if releases.Len() == 0 {
				return nil, fmt.Errorf("scheduler: job %s starved with %d free tokens", s.ID, free)
			}
			r := heap.Pop(releases).(release)
			if r.at > now {
				now = r.at
			}
			free += r.tokens
		}
		// Drain any releases that already happened by now.
		for releases.Len() > 0 && (*releases)[0].at <= now {
			free += heap.Pop(releases).(release).tokens
		}
		out[idx] = Scheduled{
			ID:          s.ID,
			StartSecond: now,
			WaitSeconds: now - s.ArrivalSecond,
			EndSecond:   now + s.DurationSeconds,
		}
		free -= s.Tokens
		heap.Push(releases, release{at: now + s.DurationSeconds, tokens: s.Tokens})
	}
	return out, nil
}

// QueueStats summarizes a schedule.
type QueueStats struct {
	MeanWaitSeconds   float64
	MaxWaitSeconds    int
	MakespanSeconds   int
	TotalTokenSeconds int
}

// Summarize aggregates schedules against their submissions.
func Summarize(subs []Submission, scheds []Scheduled) QueueStats {
	var st QueueStats
	if len(scheds) == 0 {
		return st
	}
	var waitSum int
	for i, s := range scheds {
		waitSum += s.WaitSeconds
		if s.WaitSeconds > st.MaxWaitSeconds {
			st.MaxWaitSeconds = s.WaitSeconds
		}
		if s.EndSecond > st.MakespanSeconds {
			st.MakespanSeconds = s.EndSecond
		}
		if i < len(subs) {
			st.TotalTokenSeconds += subs[i].Tokens * subs[i].DurationSeconds
		}
	}
	st.MeanWaitSeconds = float64(waitSum) / float64(len(scheds))
	return st
}

type release struct {
	at     int
	tokens int
}

type releaseHeap []release

func (h releaseHeap) Len() int           { return len(h) }
func (h releaseHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h releaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)        { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
