// Package scheduler models the resource-allocation side of the paper: the
// allocation policies compared in Figure 1 (Default, Peak, Adaptive Peak,
// and TASQ's optimal sub-peak allocation) with their over-allocation
// accounting, and a token-capacity FCFS cluster simulator that quantifies
// the queueing benefit of requesting fewer tokens (§1: "utilizing fewer
// tokens reduces job wait time and improves the overall resource
// availability for other jobs in the cluster").
//
// The allocation arithmetic itself lives in internal/plan — the shared
// core the serving-side cluster planner and the scopesim executor also
// build on; this package re-exports it under the historical offline
// vocabulary (Submission/Scheduled/Cluster).
package scheduler

import (
	"tasq/internal/plan"
	"tasq/internal/skyline"
)

// PolicyKind identifies an allocation policy.
type PolicyKind = plan.PolicyKind

// The policies of Figure 1 plus TASQ's optimal allocation.
const (
	PolicyDefault      = plan.PolicyDefault
	PolicyPeak         = plan.PolicyPeak
	PolicyAdaptivePeak = plan.PolicyAdaptivePeak
	PolicyOptimal      = plan.PolicyOptimal
)

// Typed validation errors, shared with internal/plan so the serving
// layer maps them all to HTTP 400.
var (
	ErrBadCapacity   = plan.ErrBadCapacity
	ErrNoJobs        = plan.ErrNoJobs
	ErrBadAllocation = plan.ErrBadAllocation
	ErrBadPolicy     = plan.ErrBadPolicy
	ErrStarved       = plan.ErrStarved
)

// PolicyAccounting reports how a policy would have provisioned one job run.
type PolicyAccounting = plan.PolicyAccounting

// AccountPolicy computes the provisioning accounting for a job run with
// the given observed skyline. defaultTokens is the user's request (Default
// policy); optimalTokens is TASQ's predicted allocation (Optimal policy;
// ignored for other kinds). For the Optimal policy the skyline should be
// the run at that allocation.
func AccountPolicy(kind PolicyKind, sky skyline.Skyline, defaultTokens, optimalTokens int) (PolicyAccounting, error) {
	return plan.AccountPolicy(kind, sky, defaultTokens, optimalTokens)
}

// Submission is one job entering the cluster queue: it requires Tokens
// guaranteed tokens for DurationSeconds starting when admitted.
type Submission = plan.Allocation

// Scheduled reports when a submission ran.
type Scheduled = plan.Outcome

// Cluster is a fixed-capacity token pool with FCFS admission: a job is
// admitted when its full token request is free; later arrivals cannot jump
// the queue (no backfilling), which models SCOPE's guaranteed-token
// admission.
type Cluster struct {
	Capacity int
}

// Run simulates the submissions and returns their schedules in input order.
func (c *Cluster) Run(subs []Submission) ([]Scheduled, error) {
	return plan.SimulateFCFS(c.Capacity, subs)
}

// QueueStats summarizes a schedule.
type QueueStats = plan.Stats

// Summarize aggregates schedules against their submissions.
func Summarize(subs []Submission, scheds []Scheduled) QueueStats {
	return plan.Summarize(subs, scheds)
}
