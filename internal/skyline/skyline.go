// Package skyline implements the resource-usage skyline representation from
// the TASQ paper (§1, §3): the time series of tokens a job uses over its
// execution, discretized at one-second granularity. Each 1x1 square under
// the skyline is one token-second; the area under the curve is the job's
// total work. The package provides the geometry the AREPAS simulator and
// the evaluation figures rely on: area, peak, sections above/below a
// threshold, utilization bands (Figure 5), and over-allocation accounting
// against an allocation policy (Figure 1).
package skyline

import (
	"fmt"
	"math"
)

// Skyline is a job's token usage per second. S[t] is the number of tokens
// the job used during second t. Usage is non-negative; the slice's length
// is the job's run time in seconds.
type Skyline []int

// Validate returns an error if the skyline contains negative usage.
func (s Skyline) Validate() error {
	for t, v := range s {
		if v < 0 {
			return fmt.Errorf("skyline: negative usage %d at second %d", v, t)
		}
	}
	return nil
}

// Runtime returns the job's run time in seconds.
func (s Skyline) Runtime() int { return len(s) }

// Area returns the total token-seconds under the skyline — the job's total
// amount of work under AREPAS's area-preservation assumption.
func (s Skyline) Area() int {
	var a int
	for _, v := range s {
		a += v
	}
	return a
}

// Peak returns the maximum tokens used at any second (0 for an empty
// skyline).
func (s Skyline) Peak() int {
	var p int
	for _, v := range s {
		if v > p {
			p = v
		}
	}
	return p
}

// MeanUsage returns the average tokens in use per second.
func (s Skyline) MeanUsage() float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s.Area()) / float64(len(s))
}

// Clone returns a copy of s.
func (s Skyline) Clone() Skyline {
	return append(Skyline(nil), s...)
}

// Peakiness quantifies how spiky a skyline is as 1 − mean/peak. A flat
// skyline scores near 0; a skyline with deep valleys scores near 1. Peaky
// jobs tolerate aggressive sub-peak allocation better (Figure 8).
func (s Skyline) Peakiness() float64 {
	p := s.Peak()
	if p == 0 {
		return 0
	}
	return 1 - s.MeanUsage()/float64(p)
}

// Section is a maximal contiguous run of seconds that is entirely at-or-
// under, or entirely over, a threshold allocation.
type Section struct {
	Start, End int  // half-open interval [Start, End) in seconds
	Over       bool // true if usage exceeds the threshold throughout
}

// Len returns the section length in seconds.
func (sec Section) Len() int { return sec.End - sec.Start }

// Sections splits the skyline at threshold crossings, mirroring lines 1–4
// of Algorithm 1 in the paper: each returned section is completely under
// (usage ≤ threshold) or completely over (usage > threshold).
func (s Skyline) Sections(threshold int) []Section {
	if len(s) == 0 {
		return nil
	}
	var out []Section
	cur := Section{Start: 0, Over: s[0] > threshold}
	for t := 1; t < len(s); t++ {
		over := s[t] > threshold
		if over != cur.Over {
			cur.End = t
			out = append(out, cur)
			cur = Section{Start: t, Over: over}
		}
	}
	cur.End = len(s)
	return append(out, cur)
}

// UtilizationBand classifies each second of the skyline relative to an
// allocation, reproducing the color-coded regions of Figure 5.
type UtilizationBand int

// Utilization bands ordered from worst to best use of the allocation.
const (
	BandMinimum  UtilizationBand = iota // near-minimum utilization (red)
	BandLow                             // low utilization (pink)
	BandModerate                        // moderate-to-high utilization (green)
)

// Band thresholds as fractions of the allocation: below LowCut is
// "minimum", below ModerateCut is "low", the rest is "moderate/high".
const (
	lowCut      = 0.25
	moderateCut = 0.5
)

// Bands returns the utilization band of each second under the given
// allocation. A non-positive allocation yields all-minimum.
func (s Skyline) Bands(allocation int) []UtilizationBand {
	out := make([]UtilizationBand, len(s))
	if allocation <= 0 {
		return out
	}
	for t, v := range s {
		frac := float64(v) / float64(allocation)
		switch {
		case frac < lowCut:
			out[t] = BandMinimum
		case frac < moderateCut:
			out[t] = BandLow
		default:
			out[t] = BandModerate
		}
	}
	return out
}

// BandSummary reports the fraction of run time spent in each band.
type BandSummary struct {
	Minimum, Low, Moderate float64
}

// SummarizeBands aggregates Bands into per-band time fractions.
func (s Skyline) SummarizeBands(allocation int) BandSummary {
	var sum BandSummary
	if len(s) == 0 {
		return sum
	}
	for _, b := range s.Bands(allocation) {
		switch b {
		case BandMinimum:
			sum.Minimum++
		case BandLow:
			sum.Low++
		default:
			sum.Moderate++
		}
	}
	n := float64(len(s))
	sum.Minimum /= n
	sum.Low /= n
	sum.Moderate /= n
	return sum
}

// OverAllocation returns the total token-seconds allocated but unused when
// the job holds a constant allocation for its whole run time (the shaded
// gap in Figure 1). Seconds where usage exceeds the allocation contribute
// zero (the job cannot over-use a guaranteed allocation in practice, but
// skylines recorded under a different policy may).
func (s Skyline) OverAllocation(allocation int) int {
	var waste int
	for _, v := range s {
		if v < allocation {
			waste += allocation - v
		}
	}
	return waste
}

// AdaptivePeakAllocation returns the token-seconds allocated under an
// adaptive-peak policy that, at each second, holds the maximum usage seen
// in the remaining lifetime of the job (the policy of Bag et al. [9]:
// resources are released as the remaining peak drops).
func (s Skyline) AdaptivePeakAllocation() int {
	var total int
	remainingPeak := 0
	// Walk backwards: the allocation at second t is the max over s[t:].
	allocs := make([]int, len(s))
	for t := len(s) - 1; t >= 0; t-- {
		if s[t] > remainingPeak {
			remainingPeak = s[t]
		}
		allocs[t] = remainingPeak
	}
	for _, a := range allocs {
		total += a
	}
	return total
}

// Resample returns the skyline averaged into buckets of the given width in
// seconds, useful for plotting long jobs compactly. Width < 1 is treated
// as 1.
func (s Skyline) Resample(width int) []float64 {
	if width < 1 {
		width = 1
	}
	if len(s) == 0 {
		return nil
	}
	n := (len(s) + width - 1) / width
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * width
		hi := lo + width
		if hi > len(s) {
			hi = len(s)
		}
		var sum int
		for t := lo; t < hi; t++ {
			sum += s[t]
		}
		out[i] = float64(sum) / float64(hi-lo)
	}
	return out
}

// AreaDifferenceFraction returns |area(a) − area(b)| / max(area(a),
// area(b)), the tolerance measure used to validate AREPAS's
// area-conservation assumption in §5.2 (Figure 12). Two empty skylines
// have zero difference.
func AreaDifferenceFraction(a, b Skyline) float64 {
	aa, ab := float64(a.Area()), float64(b.Area())
	mx := math.Max(aa, ab)
	if mx == 0 {
		return 0
	}
	return math.Abs(aa-ab) / mx
}
