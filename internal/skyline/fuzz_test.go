package skyline

import "testing"

// FuzzSkylineValidate throws arbitrary (including negative) usage series at
// the skyline operations: Validate must reject exactly the skylines with a
// negative second and nothing else, and the section/band/resample helpers
// must not panic on any input — valid or not — since flighted telemetry is
// parsed before it is validated.
func FuzzSkylineValidate(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0, 0, 0, 0}, 1)
	f.Add([]byte{1, 2, 3, 2, 1}, 2)
	f.Add([]byte{0xFF, 0xFF}, -1) // int8(0xFF) = -1: a negative second
	f.Add([]byte{0x7F, 0x80, 0x7F}, 100)
	f.Add([]byte{10, 0, 10, 0, 10, 0}, 5)
	f.Fuzz(func(t *testing.T, data []byte, threshold int) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		s := make(Skyline, len(data))
		negative := false
		for i, b := range data {
			s[i] = int(int8(b)) // signed: exercise the invalid range too
			if s[i] < 0 {
				negative = true
			}
		}

		if err := s.Validate(); (err != nil) != negative {
			t.Fatalf("Validate() = %v, want error iff a negative second exists (%v)", err, negative)
		}

		// The derived views must not panic on any input, and the section
		// list must partition [0, len) into alternating over/under runs.
		secs := s.Sections(threshold)
		at := 0
		for i, sec := range secs {
			if sec.Start != at || sec.End <= sec.Start {
				t.Fatalf("section %d = %+v does not continue partition at %d", i, sec, at)
			}
			if i > 0 && secs[i-1].Over == sec.Over {
				t.Fatalf("sections %d and %d both Over=%v (not maximal)", i-1, i, sec.Over)
			}
			for j := sec.Start; j < sec.End; j++ {
				if (s[j] > threshold) != sec.Over {
					t.Fatalf("second %d (usage %d) misclassified by section %+v at threshold %d", j, s[j], sec, threshold)
				}
			}
			at = sec.End
		}
		if at != len(s) {
			t.Fatalf("sections cover [0,%d), skyline has %d seconds", at, len(s))
		}

		if bands := s.Bands(threshold); len(bands) != len(s) {
			t.Fatalf("Bands returned %d entries for %d seconds", len(bands), len(s))
		}
		s.SummarizeBands(threshold)
		s.OverAllocation(threshold)
		s.AdaptivePeakAllocation()
		s.Peakiness()
		s.MeanUsage()
		if w := threshold&0x3F + 1; len(s) > 0 {
			want := (len(s) + w - 1) / w
			if rs := s.Resample(w); len(rs) != want {
				t.Fatalf("Resample(%d) returned %d buckets, want %d", w, len(rs), want)
			}
		}
	})
}
