package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Skyline{1, 2, 3}).Validate(); err != nil {
		t.Fatalf("valid skyline rejected: %v", err)
	}
	if err := (Skyline{1, -2, 3}).Validate(); err == nil {
		t.Fatal("negative usage accepted")
	}
}

func TestBasicGeometry(t *testing.T) {
	s := Skyline{2, 4, 6, 4, 2}
	if got := s.Runtime(); got != 5 {
		t.Fatalf("runtime = %d, want 5", got)
	}
	if got := s.Area(); got != 18 {
		t.Fatalf("area = %d, want 18", got)
	}
	if got := s.Peak(); got != 6 {
		t.Fatalf("peak = %d, want 6", got)
	}
	if got := s.MeanUsage(); got != 3.6 {
		t.Fatalf("mean = %v, want 3.6", got)
	}
}

func TestEmptySkyline(t *testing.T) {
	var s Skyline
	if s.Area() != 0 || s.Peak() != 0 || s.MeanUsage() != 0 || s.Peakiness() != 0 {
		t.Fatal("empty skyline geometry must be zero")
	}
	if s.Sections(3) != nil {
		t.Fatal("empty skyline must have no sections")
	}
}

func TestPeakiness(t *testing.T) {
	flat := Skyline{5, 5, 5, 5}
	if got := flat.Peakiness(); got != 0 {
		t.Fatalf("flat peakiness = %v, want 0", got)
	}
	peaky := Skyline{10, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if got := peaky.Peakiness(); got != 0.9 {
		t.Fatalf("peaky peakiness = %v, want 0.9", got)
	}
}

func TestSections(t *testing.T) {
	s := Skyline{1, 1, 5, 5, 2, 6, 1}
	secs := s.Sections(3)
	want := []Section{
		{Start: 0, End: 2, Over: false},
		{Start: 2, End: 4, Over: true},
		{Start: 4, End: 5, Over: false},
		{Start: 5, End: 6, Over: true},
		{Start: 6, End: 7, Over: false},
	}
	if len(secs) != len(want) {
		t.Fatalf("got %d sections, want %d: %+v", len(secs), len(want), secs)
	}
	for i := range want {
		if secs[i] != want[i] {
			t.Fatalf("section %d = %+v, want %+v", i, secs[i], want[i])
		}
	}
}

func TestSectionsExactlyAtThresholdAreUnder(t *testing.T) {
	s := Skyline{3, 3, 3}
	secs := s.Sections(3)
	if len(secs) != 1 || secs[0].Over {
		t.Fatalf("usage == threshold must be 'under': %+v", secs)
	}
}

func TestSectionsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(200), 20)
		th := rng.Intn(22)
		secs := s.Sections(th)
		// Sections must tile [0, len) exactly, alternate Over, and be
		// internally consistent with the threshold.
		pos := 0
		for i, sec := range secs {
			if sec.Start != pos || sec.Len() <= 0 {
				return false
			}
			if i > 0 && secs[i-1].Over == sec.Over {
				return false
			}
			for t := sec.Start; t < sec.End; t++ {
				if (s[t] > th) != sec.Over {
					return false
				}
			}
			pos = sec.End
		}
		return pos == len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBands(t *testing.T) {
	s := Skyline{1, 3, 6, 10}
	bands := s.Bands(10)
	want := []UtilizationBand{BandMinimum, BandLow, BandModerate, BandModerate}
	for i := range want {
		if bands[i] != want[i] {
			t.Fatalf("bands = %v, want %v", bands, want)
		}
	}
}

func TestBandsZeroAllocation(t *testing.T) {
	for _, b := range (Skyline{5, 5}).Bands(0) {
		if b != BandMinimum {
			t.Fatal("zero allocation must give all-minimum bands")
		}
	}
}

func TestSummarizeBandsSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(100), 50)
		sum := s.SummarizeBands(40)
		total := sum.Minimum + sum.Low + sum.Moderate
		return total > 0.999 && total < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverAllocation(t *testing.T) {
	s := Skyline{2, 4, 6}
	// Allocation 5: waste = 3 + 1 + 0 = 4 (second over the allocation
	// contributes zero).
	if got := s.OverAllocation(5); got != 4 {
		t.Fatalf("over-allocation = %d, want 4", got)
	}
	// Default-style generous allocation.
	if got := s.OverAllocation(10); got != 30-12 {
		t.Fatalf("over-allocation = %d, want 18", got)
	}
}

func TestAdaptivePeakAllocation(t *testing.T) {
	// Usage 4,2,6,1: remaining peaks are 6,6,6,1 → total 19.
	s := Skyline{4, 2, 6, 1}
	if got := s.AdaptivePeakAllocation(); got != 19 {
		t.Fatalf("adaptive peak = %d, want 19", got)
	}
}

func TestAdaptivePeakBetweenUsageAndPeakProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSkyline(rng, 1+rng.Intn(150), 30)
		adaptive := s.AdaptivePeakAllocation()
		peakTotal := s.Peak() * s.Runtime()
		return adaptive >= s.Area() && adaptive <= peakTotal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResample(t *testing.T) {
	s := Skyline{2, 4, 6, 8, 10}
	got := s.Resample(2)
	want := []float64{3, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("resample = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample = %v, want %v", got, want)
		}
	}
	if got := s.Resample(0); len(got) != 5 {
		t.Fatalf("width<1 must behave as 1, got %v", got)
	}
}

func TestAreaDifferenceFraction(t *testing.T) {
	a := Skyline{5, 5} // area 10
	b := Skyline{4, 4} // area 8
	if got := AreaDifferenceFraction(a, b); got != 0.2 {
		t.Fatalf("area diff = %v, want 0.2", got)
	}
	if got := AreaDifferenceFraction(b, a); got != 0.2 {
		t.Fatalf("area diff must be symmetric, got %v", got)
	}
	if got := AreaDifferenceFraction(Skyline{}, Skyline{}); got != 0 {
		t.Fatalf("empty-vs-empty diff = %v, want 0", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Skyline{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("clone shares storage with original")
	}
}

func randomSkyline(rng *rand.Rand, n, maxTok int) Skyline {
	s := make(Skyline, n)
	for i := range s {
		s[i] = rng.Intn(maxTok + 1)
	}
	return s
}
