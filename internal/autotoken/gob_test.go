package autotoken

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	recs := ingest(t, 300, 7)
	m, err := Train(recs, Config{Safety: 1.2})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}

	if back.Safety != m.Safety {
		t.Fatalf("safety %v, want %v", back.Safety, m.Safety)
	}
	if back.Groups() != m.Groups() {
		t.Fatalf("groups %d, want %d", back.Groups(), m.Groups())
	}
	// Every prediction must survive the round trip exactly, including
	// regression coefficients and the historical-max fallback.
	for _, rec := range recs {
		want, okWant := m.PredictPeak(rec.Job)
		got, okGot := back.PredictPeak(rec.Job)
		if okWant != okGot || want != got {
			t.Fatalf("job %s: prediction %d/%v, want %d/%v", rec.Job.ID, got, okGot, want, okWant)
		}
	}
}
