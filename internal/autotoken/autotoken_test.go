package autotoken

import (
	"testing"

	"tasq/internal/jobrepo"
	"tasq/internal/scopesim"
	"tasq/internal/workload"
)

func ingest(t *testing.T, n int, seed int64) []*jobrepo.Record {
	t.Helper()
	g := workload.New(workload.TestConfig(seed))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(n), &ex); err != nil {
		t.Fatal(err)
	}
	return repo.All()
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("empty training accepted")
	}
	// Only ad-hoc jobs: nothing to group.
	recs := ingest(t, 40, 1)
	var adhoc []*jobrepo.Record
	for _, rec := range recs {
		if rec.Job.Template == "" {
			adhoc = append(adhoc, rec)
		}
	}
	if len(adhoc) == 0 {
		t.Skip("no ad-hoc jobs in sample")
	}
	if _, err := Train(adhoc, Config{}); err == nil {
		t.Fatal("ad-hoc-only training accepted")
	}
}

func TestCoverageSplitsRecurringVsAdhoc(t *testing.T) {
	recs := ingest(t, 300, 2)
	m, err := Train(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups() == 0 {
		t.Fatal("no groups trained")
	}
	var coveredRecurring, coveredAdhoc int
	for _, rec := range recs {
		covered := m.Covered(rec.Job)
		if _, ok := m.PredictPeak(rec.Job); ok != covered {
			t.Fatal("Covered and PredictPeak disagree")
		}
		if covered && rec.Job.Template == "" {
			coveredAdhoc++
		}
		if covered && rec.Job.Template != "" {
			coveredRecurring++
		}
	}
	if coveredAdhoc != 0 {
		t.Fatalf("%d ad-hoc jobs covered; AutoToken cannot cover ad-hoc jobs", coveredAdhoc)
	}
	if coveredRecurring == 0 {
		t.Fatal("no recurring jobs covered")
	}
}

func TestUnseenTemplateUncovered(t *testing.T) {
	recs := ingest(t, 100, 3)
	m, err := Train(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := &scopesim.Job{ID: "new", Template: "never-seen-before"}
	if m.Covered(fresh) {
		t.Fatal("unseen template covered")
	}
}

func TestPredictionsCoverActualPeaks(t *testing.T) {
	// Train and evaluate on held-out instances of the same templates: the
	// predicted peak (with safety headroom) should usually cover or come
	// close to the actual peak.
	recs := ingest(t, 600, 4)
	train, test := recs[:400], recs[400:]
	m, err := Train(train, Config{Safety: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	var covered, reasonable int
	for _, rec := range test {
		pred, ok := m.PredictPeak(rec.Job)
		if !ok {
			continue
		}
		covered++
		actual := rec.Skyline.Peak()
		// Within a factor of three either way is "reasonable" for a
		// peak predictor keyed only on input size.
		if pred >= actual/3 && pred <= actual*3+1 {
			reasonable++
		}
	}
	if covered < 20 {
		t.Fatalf("only %d covered test jobs", covered)
	}
	if float64(reasonable) < 0.6*float64(covered) {
		t.Fatalf("only %d/%d predictions within 3x of the actual peak", reasonable, covered)
	}
}

func TestSafetyHeadroomIncreasesPrediction(t *testing.T) {
	recs := ingest(t, 300, 5)
	tight, err := Train(recs, Config{Safety: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Train(recs, Config{Safety: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var some bool
	for _, rec := range recs {
		a, ok1 := tight.PredictPeak(rec.Job)
		b, ok2 := loose.PredictPeak(rec.Job)
		if ok1 != ok2 {
			t.Fatal("coverage differs between safety settings")
		}
		if !ok1 {
			continue
		}
		if b < a {
			t.Fatalf("larger safety shrank prediction: %d < %d", b, a)
		}
		if b > a {
			some = true
		}
	}
	if !some {
		t.Fatal("safety headroom had no effect")
	}
}

func TestSmallGroupFallsBackToMax(t *testing.T) {
	// Two instances of one template (below MinGroupSize 3): prediction is
	// the historical max times safety.
	g := workload.New(workload.TestConfig(6))
	repo := jobrepo.New()
	var ex scopesim.Executor
	var recs []*jobrepo.Record
	for len(recs) < 2 {
		j := g.Job()
		if j.Template == "" {
			continue
		}
		// Force the same template signature for a tiny group.
		j.Template = "tiny-group"
		if err := repo.Ingest([]*scopesim.Job{j}, &ex); err != nil {
			t.Fatal(err)
		}
		recs = repo.All()
	}
	m, err := Train(recs, Config{Safety: 1.0, MinGroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	maxPeak := 0
	for _, rec := range recs {
		if p := rec.Skyline.Peak(); p > maxPeak {
			maxPeak = p
		}
	}
	pred, ok := m.PredictPeak(recs[0].Job)
	if !ok {
		t.Fatal("tiny group uncovered")
	}
	if pred != maxPeak {
		t.Fatalf("fallback prediction %d, want historical max %d", pred, maxPeak)
	}
}
