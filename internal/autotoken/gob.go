package autotoken

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// The group map and its per-group parameters are unexported, so Model
// implements gob.GobEncoder/GobDecoder over an exported wire form —
// otherwise a persisted pipeline would silently drop every group and
// reload AutoToken as a model that covers nothing. Groups are encoded
// as a signature-sorted slice, not a map: pipeline persistence promises
// byte-identical serialization for identical models, and gob's map
// encoding follows randomized iteration order.

// wireGroup is the exported gob form of one groupModel.
type wireGroup struct {
	Signature string
	HasFit    bool
	B0, B1    float64
	MaxPeak   int
	NSamples  int
}

// wireModel is the exported gob form of Model.
type wireModel struct {
	Safety float64
	Groups []wireGroup
}

// GobEncode implements gob.GobEncoder.
func (m *Model) GobEncode() ([]byte, error) {
	w := wireModel{Safety: m.Safety, Groups: make([]wireGroup, 0, len(m.groups))}
	for sig, gm := range m.groups {
		w.Groups = append(w.Groups, wireGroup{
			Signature: sig, HasFit: gm.hasFit, B0: gm.b0, B1: gm.b1,
			MaxPeak: gm.maxPeak, NSamples: gm.nSamples,
		})
	}
	sort.Slice(w.Groups, func(i, j int) bool { return w.Groups[i].Signature < w.Groups[j].Signature })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(data []byte) error {
	var w wireModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	m.Safety = w.Safety
	m.groups = make(map[string]*groupModel, len(w.Groups))
	for _, g := range w.Groups {
		m.groups[g.Signature] = &groupModel{
			hasFit: g.HasFit, b0: g.B0, b1: g.B1,
			maxPeak: g.MaxPeak, nSamples: g.NSamples,
		}
	}
	return nil
}
