// Package autotoken implements the AutoToken baseline (Sen et al., VLDB
// 2020), the paper's own prior system discussed in §6.2: it groups
// recurring SCOPE jobs by signature and trains an individual model per
// group to predict the group's *peak* token requirement from input-size
// features. Its two limitations motivate TASQ:
//
//   - no coverage for ad-hoc jobs — a new signature has no model (the
//     paper notes 40–60% of SCOPE jobs are new), and
//   - peak-only prediction — it cannot answer what-if questions about
//     sub-peak allocations, because it does not model run time at all.
//
// Each group model is a log–log linear regression of peak tokens on the
// job's leaf input cardinality (AutoToken's "relationships between data
// size … and a group's peak allocation"), with a historical-max fallback
// for groups too small or too degenerate to regress.
package autotoken

import (
	"errors"
	"math"

	"tasq/internal/jobrepo"
	"tasq/internal/ml/linalg"
	"tasq/internal/scopesim"
)

// Model predicts peak tokens for jobs whose signature was seen in training.
type Model struct {
	groups map[string]*groupModel
	// Safety is the multiplicative headroom applied to predictions so the
	// guaranteed allocation covers the peak (AutoToken optimizes for not
	// throttling the job).
	Safety float64
}

// groupModel is one recurring-job group's predictor.
type groupModel struct {
	// hasFit marks a usable regression log(peak) = b0 + b1·log(input).
	hasFit   bool
	b0, b1   float64
	maxPeak  int // historical fallback
	nSamples int
}

// Config controls training.
type Config struct {
	// Safety is the headroom multiplier; AutoToken-style systems
	// over-provision slightly to avoid throttling. Default 1.1.
	Safety float64
	// MinGroupSize is the minimum instances before a regression is fitted
	// (below it the group falls back to its historical max). Default 3.
	MinGroupSize int
}

func (c Config) withDefaults() Config {
	if c.Safety <= 0 {
		c.Safety = 1.1
	}
	if c.MinGroupSize < 2 {
		c.MinGroupSize = 3
	}
	return c
}

// sample is one training observation within a group.
type sample struct{ logInput, logPeak float64 }

// Train fits per-group models over historical records. Ad-hoc jobs (empty
// template signature) are skipped: AutoToken has nothing to group them by.
func Train(recs []*jobrepo.Record, cfg Config) (*Model, error) {
	if len(recs) == 0 {
		return nil, errors.New("autotoken: empty training set")
	}
	cfg = cfg.withDefaults()
	groups := make(map[string][]sample)
	maxPeaks := make(map[string]int)
	for _, rec := range recs {
		sig := rec.Job.Template
		if sig == "" {
			continue
		}
		peak := rec.Skyline.Peak()
		if peak < 1 {
			continue
		}
		in := inputSize(rec.Job)
		groups[sig] = append(groups[sig], sample{logInput: math.Log1p(in), logPeak: math.Log(float64(peak))})
		if peak > maxPeaks[sig] {
			maxPeaks[sig] = peak
		}
	}
	if len(groups) == 0 {
		return nil, errors.New("autotoken: no recurring jobs in the training set")
	}
	m := &Model{groups: make(map[string]*groupModel, len(groups)), Safety: cfg.Safety}
	for sig, samples := range groups {
		gm := &groupModel{maxPeak: maxPeaks[sig], nSamples: len(samples)}
		if len(samples) >= cfg.MinGroupSize && spread(samples) {
			x := linalg.New(len(samples), 2)
			y := linalg.New(len(samples), 1)
			for i, s := range samples {
				x.Set(i, 0, 1)
				x.Set(i, 1, s.logInput)
				y.Set(i, 0, s.logPeak)
			}
			if beta, err := linalg.LeastSquares(x, y); err == nil {
				gm.hasFit = true
				gm.b0 = beta.At(0, 0)
				gm.b1 = beta.At(1, 0)
			}
		}
		m.groups[sig] = gm
	}
	return m, nil
}

// spread reports whether the group's inputs vary enough to regress on.
func spread(samples []sample) bool {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		lo = math.Min(lo, s.logInput)
		hi = math.Max(hi, s.logInput)
	}
	return hi-lo > 1e-6
}

// inputSize extracts the job's leaf input cardinality estimate — the data
// size AutoToken keys its per-group model on.
func inputSize(job *scopesim.Job) float64 {
	var in float64
	for i := range job.Operators {
		if c := job.Operators[i].Est.LeafInputCardinality; c > in {
			in = c
		}
	}
	return in
}

// Covered reports whether the job's signature has a trained group.
func (m *Model) Covered(job *scopesim.Job) bool {
	if job.Template == "" {
		return false
	}
	_, ok := m.groups[job.Template]
	return ok
}

// Groups returns the number of trained groups.
func (m *Model) Groups() int { return len(m.groups) }

// PredictPeak returns the predicted peak-token allocation for the job,
// with ok=false for uncovered (ad-hoc or unseen-signature) jobs — the
// coverage gap §6.2 highlights.
func (m *Model) PredictPeak(job *scopesim.Job) (int, bool) {
	gm, ok := m.groups[job.Template]
	if job.Template == "" || !ok {
		return 0, false
	}
	var peak float64
	if gm.hasFit {
		peak = math.Exp(gm.b0 + gm.b1*math.Log1p(inputSize(job)))
	} else {
		peak = float64(gm.maxPeak)
	}
	peak *= m.Safety
	tokens := int(math.Ceil(peak))
	if tokens < 1 {
		tokens = 1
	}
	return tokens, true
}
