// Package parallel is the bounded worker-pool utility behind the offline
// pipeline's fan-out: AREPAS sweeps, dataset generation, batch evaluation
// and the experiment runners are all embarrassingly parallel per item, and
// this package lets them scale to every core while staying bit-reproducible.
//
// Determinism is the design constraint. Map and ForEach preserve input
// ordering (result i always comes from item i), reductions over their
// results happen serially in the caller, and Seed derives an independent
// per-item RNG seed from a base seed and the item index — never from the
// goroutine that happens to run the item. Consequently a stage's output is
// byte-identical at any worker count and any GOMAXPROCS: Workers(1) runs
// the exact serial legacy path (no goroutines), and Workers(n) produces the
// same bytes faster.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values below 1 (the "use
// everything" default for zero configs) become runtime.NumCPU().
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// capturedPanic records a worker panic so it can be re-raised on the
// calling goroutine instead of crashing the process from inside the pool.
type capturedPanic struct {
	index int
	value any
	stack []byte
}

// Map applies f to every index in [0, n) using at most workers goroutines
// and returns the n results in input order. workers < 1 means
// runtime.NumCPU(); workers == 1 runs f inline on the calling goroutine —
// the exact legacy serial path, no goroutines spawned.
//
// Error semantics are deterministic: if any items fail, Map returns the
// error of the lowest failing index (first-error propagation in input
// order), regardless of completion order. Remaining items stop being
// dispatched once an error or context cancellation is observed, so f must
// tolerate not being called for every index on failure — and, conversely,
// may have been called for indices after the failing one.
//
// A panic inside f is captured, the pool is drained, and the panic is
// re-raised on the calling goroutine (lowest panicking index first) with
// the worker's stack trace attached.
func Map[T any](ctx context.Context, n, workers int, f func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next index to dispatch
		stopped atomic.Bool  // set on first error/panic/cancellation
		mu      sync.Mutex
		errIdx  = n // lowest failing index so far
		firstEr error
		panics  []capturedPanic
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							panics = append(panics, capturedPanic{index: i, value: r, stack: workerStack()})
							mu.Unlock()
							stopped.Store(true)
						}
					}()
					v, err := f(i)
					if err != nil {
						fail(i, err)
						return
					}
					out[i] = v
				}()
			}
		}()
	}
	wg.Wait()

	if len(panics) > 0 {
		p := panics[0]
		for _, q := range panics[1:] {
			if q.index < p.index {
				p = q
			}
		}
		panic(fmt.Sprintf("parallel: panic on item %d: %v\n\nworker stack:\n%s", p.index, p.value, p.stack))
	}
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// workerStack captures the panicking worker's stack (without crashing on
// allocation pressure — a truncated stack is fine for diagnostics).
func workerStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// ForEach applies f to every index in [0, n) with Map's scheduling, error
// and panic semantics, for stages that write results through captured
// slices (index i is owned exclusively by call i, so no locking is needed).
func ForEach(ctx context.Context, n, workers int, f func(i int) error) error {
	_, err := Map(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, f(i)
	})
	return err
}

// Seed derives the RNG seed for one work item from a base seed and the
// item's index, using the SplitMix64 finalizer over the pair. Deriving
// seeds from indices — never from worker identity or dispatch order — is
// what keeps stochastic stages (noisy flighting) bit-reproducible at any
// worker count: item i draws from its own stream no matter which goroutine
// runs it or when. The finalizer's avalanche behaviour keeps neighbouring
// indices statistically independent even though base+index pairs are
// highly correlated.
func Seed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
