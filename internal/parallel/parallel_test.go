package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		out, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(i int) (int, error) {
		t.Fatal("f called for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("Map(n=0) = %v, %v; want nil, nil", out, err)
	}
}

func TestMapFirstErrorLowestIndex(t *testing.T) {
	errA := errors.New("boom-3")
	errB := errors.New("boom-7")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err=%v, want lowest-index error %v", workers, err, errA)
		}
	}
}

// The lowest-index guarantee must hold even when the low item fails late:
// item 0 sleeps before failing while item 9 fails instantly.
func TestMapFirstErrorRace(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := Map(context.Background(), 10, 4, func(i int) (int, error) {
		if i == 0 {
			time.Sleep(20 * time.Millisecond)
			return 0, errLow
		}
		if i == 9 {
			return 0, errHigh
		}
		time.Sleep(5 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err=%v, want lowest-index error even when it finishes last", err)
	}
}

func TestMapContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		_, err := Map(ctx, 1000, workers, func(i int) (int, error) {
			if calls.Add(1) == 5 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if n := calls.Load(); n >= 1000 {
			t.Fatalf("workers=%d: all %d items ran despite cancellation", workers, n)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if workers > 1 {
					msg, ok := r.(string)
					if !ok || !strings.Contains(msg, "item 2") {
						t.Fatalf("workers=%d: recovered %v, want message naming item 2", workers, r)
					}
				}
			}()
			_, _ = Map(context.Background(), 8, workers, func(i int) (int, error) {
				if i == 2 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

func TestMapSerialPathSpawnsNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := Map(context.Background(), 200, 1, func(i int) (int, error) {
		if g := runtime.NumGoroutine(); g > before {
			return 0, fmt.Errorf("item %d saw %d goroutines, started with %d", i, g, before)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 6} {
		out := make([]int, 64)
		err := ForEach(context.Background(), len(out), workers, func(i int) error {
			out[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

// Parallel output must be byte-identical to serial output, including for
// stochastic work: each item draws from its own Seed-derived stream.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), 64, workers, func(i int) (float64, error) {
			rng := rand.New(rand.NewSource(Seed(42, i)))
			sum := 0.0
			for k := 0; k < 100; k++ {
				sum += rng.NormFloat64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d output differs from serial", workers)
		}
	}
}

func TestSeedProperties(t *testing.T) {
	// Distinct indices under the same base must yield distinct seeds, and
	// the same (base, index) pair must be stable.
	seen := make(map[int64]int, 10000)
	for i := 0; i < 10000; i++ {
		s := Seed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed(7, %d) == Seed(7, %d) == %d", i, prev, s)
		}
		seen[s] = i
		if s != Seed(7, i) {
			t.Fatalf("Seed(7, %d) not stable", i)
		}
	}
	// Different bases must decorrelate even at index 0.
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("Seed(1,0) == Seed(2,0)")
	}
	// Neighbouring indices should not produce near-identical seeds: check
	// the low 32 bits differ (avalanche sanity, not a statistical test).
	for i := 0; i < 100; i++ {
		a, b := Seed(99, i), Seed(99, i+1)
		if uint32(a) == uint32(b) {
			t.Fatalf("low bits collide for indices %d,%d", i, i+1)
		}
	}
}

func BenchmarkMap(b *testing.B) {
	work := func(i int) (float64, error) {
		rng := rand.New(rand.NewSource(Seed(1, i)))
		sum := 0.0
		for k := 0; k < 2000; k++ {
			sum += rng.Float64()
		}
		return sum, nil
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := Map(context.Background(), 256, workers, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
