package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// promotionFile is the root-level marker the autopilot writes when it
// promotes a candidate. Like PINNED it is registry-global state, not
// version state: at most one promotion is "live" (inside its guardrail
// watch window or already resolved) at a time.
const promotionFile = "PROMOTION"

// ErrNoPromotion is returned by Promotion when no record exists.
var ErrNoPromotion = errors.New("registry: no promotion record")

// PromotionRecord documents an autopilot promotion: which version was
// auto-pinned, which version it displaced (the rollback target), and —
// once the guardrail has spoken — whether the promotion was rolled back.
// While a record exists, GC protects both Version and Previous exactly
// like the pinned version, so the rollback target can never be collected
// out from under the guardrail.
type PromotionRecord struct {
	// Version is the promoted (auto-pinned) generation.
	Version int `json:"version"`
	// Previous is the generation that was active before promotion — the
	// guaranteed-live rollback target.
	Previous int `json:"previous"`
	// PromotedAtN is the autopilot's observation count at promotion time
	// (a deterministic logical clock, not wall time).
	PromotedAtN int64 `json:"promoted_at_n"`
	// CandidateErr and ActiveErr are the shadow-sample mean relative
	// errors that justified the promotion.
	CandidateErr float64 `json:"candidate_err"`
	ActiveErr    float64 `json:"active_err"`
	// RolledBack is set when the post-promotion guardrail fired and
	// serving was re-pinned to Previous. A rolled-back record is kept
	// (until the next promotion overwrites it) as the audit trail of why
	// the older generation is serving.
	RolledBack bool `json:"rolled_back,omitempty"`
	// RolledBackAtN is the observation count at rollback time.
	RolledBackAtN int64 `json:"rolled_back_at_n,omitempty"`
}

// SetPromotion writes (or overwrites) the promotion record crash-safely.
// Both referenced versions must exist.
func (r *Registry) SetPromotion(rec PromotionRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.Manifest(rec.Version); err != nil {
		return err
	}
	if rec.Previous != 0 {
		if _, err := r.Manifest(rec.Previous); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encoding promotion record: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(r.root, promotionFile+".tmp")
	if err := writeFileSynced(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.root, promotionFile)); err != nil {
		return fmt.Errorf("registry: writing promotion record: %w", err)
	}
	return syncPath(r.root)
}

// Promotion reads the current promotion record; ErrNoPromotion if none.
func (r *Registry) Promotion() (PromotionRecord, error) {
	data, err := os.ReadFile(filepath.Join(r.root, promotionFile))
	if errors.Is(err, os.ErrNotExist) {
		return PromotionRecord{}, ErrNoPromotion
	}
	if err != nil {
		return PromotionRecord{}, fmt.Errorf("registry: reading promotion record: %w", err)
	}
	var rec PromotionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return PromotionRecord{}, fmt.Errorf("registry: corrupt promotion record: %w", err)
	}
	if rec.Version < 1 {
		return PromotionRecord{}, fmt.Errorf("registry: corrupt promotion record: version %d", rec.Version)
	}
	return rec, nil
}

// ClearPromotion removes the promotion record; no error if none exists.
func (r *Registry) ClearPromotion() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := os.Remove(filepath.Join(r.root, promotionFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("registry: clearing promotion record: %w", err)
	}
	return syncPath(r.root)
}

// Annotate merges key/value pairs into a version's manifest annotations
// and rewrites the manifest atomically (temp + fsync + rename inside the
// version directory). The payload is untouched, so the SHA-256 stays
// valid. An empty value deletes the key.
func (r *Registry) Annotate(version int, kv map[string]string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.Manifest(version)
	if err != nil {
		return err
	}
	if m.Annotations == nil {
		m.Annotations = make(map[string]string, len(kv))
	}
	for k, v := range kv {
		if v == "" {
			delete(m.Annotations, k)
			continue
		}
		m.Annotations[k] = v
	}
	if len(m.Annotations) == 0 {
		m.Annotations = nil
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Join(r.root, versionDir(version))
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := writeFileSynced(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("registry: annotating v%d: %w", version, err)
	}
	return syncPath(dir)
}
