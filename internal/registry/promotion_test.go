package registry

import (
	"errors"
	"testing"
)

func TestPromotionRoundTrip(t *testing.T) {
	r := open(t)
	if _, err := r.Promotion(); !errors.Is(err, ErrNoPromotion) {
		t.Fatalf("empty registry Promotion error %v, want ErrNoPromotion", err)
	}
	v1 := publish(t, r, "gen one")
	v2 := publish(t, r, "gen two")
	rec := PromotionRecord{
		Version: v2, Previous: v1, PromotedAtN: 42,
		CandidateErr: 0.11, ActiveErr: 0.58,
	}
	if err := r.SetPromotion(rec); err != nil {
		t.Fatal(err)
	}
	got, err := r.Promotion()
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("promotion record %+v, want %+v", got, rec)
	}
	// Overwrite with a rollback outcome.
	rec.RolledBack = true
	rec.RolledBackAtN = 77
	if err := r.SetPromotion(rec); err != nil {
		t.Fatal(err)
	}
	if got, _ = r.Promotion(); !got.RolledBack || got.RolledBackAtN != 77 {
		t.Fatalf("rolled-back record %+v", got)
	}
	if err := r.ClearPromotion(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promotion(); !errors.Is(err, ErrNoPromotion) {
		t.Fatalf("after clear, Promotion error %v, want ErrNoPromotion", err)
	}
	// Clearing twice is fine.
	if err := r.ClearPromotion(); err != nil {
		t.Fatal(err)
	}
}

func TestSetPromotionValidatesVersions(t *testing.T) {
	r := open(t)
	v1 := publish(t, r, "gen one")
	if err := r.SetPromotion(PromotionRecord{Version: 99, Previous: v1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing promoted version error %v, want ErrNotFound", err)
	}
	if err := r.SetPromotion(PromotionRecord{Version: v1, Previous: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing previous version error %v, want ErrNotFound", err)
	}
	// Previous == 0 means "no prior generation" (first-ever promotion) and
	// needs no validation.
	if err := r.SetPromotion(PromotionRecord{Version: v1}); err != nil {
		t.Fatal(err)
	}
}

// TestGCProtectsRollbackTarget is the satellite fix: the previous-active
// generation named by a promotion record must survive GC exactly like a
// pin, or the guardrail could have nothing to roll back to.
func TestGCProtectsRollbackTarget(t *testing.T) {
	r := open(t)
	v1 := publish(t, r, "gen one") // rollback target
	for i := 0; i < 4; i++ {
		publish(t, r, "filler")
	}
	v6 := publish(t, r, "gen six") // promoted
	if err := r.Pin(v6); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPromotion(PromotionRecord{Version: v6, Previous: v1}); err != nil {
		t.Fatal(err)
	}
	removed, err := r.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range removed {
		if v == v1 || v == v6 {
			t.Fatalf("GC removed protected version v%d (removed %v)", v, removed)
		}
	}
	if len(removed) != 4 {
		t.Fatalf("GC removed %v, want the 4 filler versions", removed)
	}
	// Both promotion-referenced versions are still loadable.
	if _, _, err := r.Get(v1); err != nil {
		t.Fatalf("rollback target collected: %v", err)
	}
	if _, _, err := r.Get(v6); err != nil {
		t.Fatalf("promoted version collected: %v", err)
	}
	// Once the record is cleared, the old generation becomes collectible.
	if err := r.ClearPromotion(); err != nil {
		t.Fatal(err)
	}
	removed, err = r.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != v1 {
		t.Fatalf("post-clear GC removed %v, want [%d]", removed, v1)
	}
}

func TestAnnotate(t *testing.T) {
	r := open(t)
	v := publish(t, r, "gen one")
	if err := r.Annotate(v, map[string]string{"autopilot.promoted_at_n": "42", "note": "x"}); err != nil {
		t.Fatal(err)
	}
	m, err := r.Manifest(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Annotations["autopilot.promoted_at_n"] != "42" || m.Annotations["note"] != "x" {
		t.Fatalf("annotations %+v", m.Annotations)
	}
	// Merge keeps existing keys; empty value deletes.
	if err := r.Annotate(v, map[string]string{"note": "", "extra": "y"}); err != nil {
		t.Fatal(err)
	}
	m, _ = r.Manifest(v)
	if _, ok := m.Annotations["note"]; ok {
		t.Fatal("empty value did not delete key")
	}
	if m.Annotations["autopilot.promoted_at_n"] != "42" || m.Annotations["extra"] != "y" {
		t.Fatalf("merged annotations %+v", m.Annotations)
	}
	// The payload checksum still verifies after the manifest rewrite.
	if _, _, err := r.Get(v); err != nil {
		t.Fatalf("Get after Annotate: %v", err)
	}
	if err := r.Annotate(99, map[string]string{"k": "v"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("annotate missing version error %v, want ErrNotFound", err)
	}
}
