package registry

import (
	"bytes"
	"fmt"

	"tasq/internal/trainer"
)

// PipelineFormat names the payload framing written by PublishPipeline:
// the trainer's magic-headed, checksummed gob stream.
const PipelineFormat = "tasq-pipeline/v1"

// PublishPipeline serializes a trained pipeline and publishes it as a new
// version. The manifest's Format is forced to PipelineFormat and its
// Predictors filled from the pipeline's trained predictor set; Train,
// EvalMetrics and Notes pass through from m.
func (r *Registry) PublishPipeline(p *trainer.Pipeline, m Manifest) (int, error) {
	var buf bytes.Buffer
	if err := trainer.SavePipeline(p, &buf); err != nil {
		return 0, err
	}
	m.Format = PipelineFormat
	m.Predictors = p.TrainedPredictors()
	return r.Publish(buf.Bytes(), m)
}

// GetPipeline loads and decodes the pipeline of a version, after the
// registry-level checksum check; the trainer framing re-verifies its own
// embedded checksum during decode.
func (r *Registry) GetPipeline(version int) (*trainer.Pipeline, Manifest, error) {
	payload, m, err := r.Get(version)
	if err != nil {
		return nil, Manifest{}, err
	}
	if m.Format != "" && m.Format != PipelineFormat {
		return nil, Manifest{}, fmt.Errorf("%w: v%d holds %q, not %q", ErrManifest, version, m.Format, PipelineFormat)
	}
	p, err := trainer.LoadPipeline(bytes.NewReader(payload))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("registry: v%d: %w", version, err)
	}
	return p, m, nil
}

// SummarizeTraining builds the manifest TrainSummary from a training
// configuration and dataset size.
func SummarizeTraining(cfg trainer.Config, jobs int) TrainSummary {
	s := TrainSummary{
		Seed:     cfg.Seed,
		Jobs:     jobs,
		XGBTrees: cfg.XGB.NumTrees,
		SkipNN:   cfg.SkipNN,
		SkipGNN:  cfg.SkipGNN,
	}
	if !cfg.SkipNN {
		s.Loss = cfg.NN.Loss.String()
		s.NNEpochs = cfg.NN.Epochs
	}
	if !cfg.SkipGNN {
		s.GNNEpochs = cfg.GNN.Epochs
	}
	return s
}
