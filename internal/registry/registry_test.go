package registry

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func open(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func publish(t *testing.T, r *Registry, payload string) int {
	t.Helper()
	v, err := r.Publish([]byte(payload), Manifest{Format: "test/raw"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPublishGetRoundTrip(t *testing.T) {
	r := open(t)
	if _, err := r.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty registry Latest error %v, want ErrEmpty", err)
	}
	v1 := publish(t, r, "model one")
	v2 := publish(t, r, "model two")
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d, %d, want 1, 2", v1, v2)
	}
	latest, err := r.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("latest %d (%v), want 2", latest, err)
	}
	payload, m, err := r.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "model one" {
		t.Fatalf("payload %q", payload)
	}
	if m.Version != 1 || m.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("manifest %+v", m)
	}
	if m.SizeBytes != int64(len("model one")) || m.SHA256 == "" {
		t.Fatalf("manifest integrity fields %+v", m)
	}
	if time.Since(m.CreatedAt) > time.Minute || m.CreatedAt.IsZero() {
		t.Fatalf("created at %v", m.CreatedAt)
	}
	if _, _, err := r.Get(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version error %v, want ErrNotFound", err)
	}
}

func TestListAscending(t *testing.T) {
	r := open(t)
	for i := 0; i < 3; i++ {
		publish(t, r, "payload")
	}
	ms, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("listed %d, want 3", len(ms))
	}
	for i, m := range ms {
		if m.Version != i+1 {
			t.Fatalf("list[%d].Version = %d", i, m.Version)
		}
	}
}

func TestPublishRejectsEmptyPayload(t *testing.T) {
	r := open(t)
	if _, err := r.Publish(nil, Manifest{}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestPublishAtomicNoTempLeftovers(t *testing.T) {
	r := open(t)
	publish(t, r, "model")
	entries, err := os.ReadDir(r.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp dir %s left behind", e.Name())
		}
	}
}

// TestOpenIgnoresCrashLeftovers plants a half-published temp directory
// (as a crash mid-publish would leave) and checks it is invisible to
// reads and swept by GC.
func TestOpenIgnoresCrashLeftovers(t *testing.T) {
	r := open(t)
	publish(t, r, "good")
	stale := filepath.Join(r.Root(), tmpPrefix+"v0002-abc")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, payloadFile), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("versions %v, want [1]", vs)
	}
	// The next publish is unaffected and gets v2.
	if v := publish(t, r, "next"); v != 2 {
		t.Fatalf("publish after crash leftover got v%d", v)
	}
	if _, err := r.GC(10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("GC did not sweep the stale temp dir")
	}
}

// TestCorruptionTypedErrors pins the distinct-error contract of the
// ISSUE: flipped payload byte → ErrChecksum, missing manifest →
// ErrManifest, and neither ever yields payload bytes.
func TestCorruptionTypedErrors(t *testing.T) {
	t.Run("flipped payload byte", func(t *testing.T) {
		r := open(t)
		v := publish(t, r, "a payload long enough to flip")
		path := filepath.Join(r.Root(), versionDir(v), payloadFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		payload, _, err := r.Get(v)
		if payload != nil {
			t.Fatal("corrupt payload returned")
		}
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("error %v, want ErrChecksum", err)
		}
	})
	t.Run("missing manifest", func(t *testing.T) {
		r := open(t)
		v := publish(t, r, "payload")
		if err := os.Remove(filepath.Join(r.Root(), versionDir(v), manifestFile)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Get(v); !errors.Is(err, ErrManifest) {
			t.Fatalf("error %v, want ErrManifest", err)
		}
		if _, err := r.List(); !errors.Is(err, ErrManifest) {
			t.Fatalf("List error %v, want ErrManifest", err)
		}
	})
	t.Run("manifest version mismatch", func(t *testing.T) {
		r := open(t)
		v := publish(t, r, "payload")
		path := filepath.Join(r.Root(), versionDir(v), manifestFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 7`), 1)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Get(v); !errors.Is(err, ErrManifest) {
			t.Fatalf("error %v, want ErrManifest", err)
		}
	})
}

func TestPinUnpin(t *testing.T) {
	r := open(t)
	if err := r.Pin(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pinning missing version: %v", err)
	}
	if pinned, err := r.Pinned(); err != nil || pinned != 0 {
		t.Fatalf("fresh registry pinned %d (%v)", pinned, err)
	}
	publish(t, r, "one")
	publish(t, r, "two")
	if err := r.Pin(1); err != nil {
		t.Fatal(err)
	}
	if pinned, err := r.Pinned(); err != nil || pinned != 1 {
		t.Fatalf("pinned %d (%v), want 1", pinned, err)
	}
	if err := r.Pin(2); err != nil {
		t.Fatal(err)
	}
	if pinned, _ := r.Pinned(); pinned != 2 {
		t.Fatalf("re-pin left %d", pinned)
	}
	if err := r.Unpin(); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpin(); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("double unpin: %v", err)
	}
}

func TestGCKeepsNewestAndPinned(t *testing.T) {
	r := open(t)
	for i := 0; i < 5; i++ {
		publish(t, r, "payload")
	}
	if err := r.Pin(2); err != nil {
		t.Fatal(err)
	}
	removed, err := r.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	// Keep 4 and 5 (newest two) plus pinned 2; remove 1 and 3.
	if len(removed) != 2 || removed[0] != 1 || removed[1] != 3 {
		t.Fatalf("removed %v, want [1 3]", removed)
	}
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 2 || vs[1] != 4 || vs[2] != 5 {
		t.Fatalf("survivors %v, want [2 4 5]", vs)
	}
	// keep < 1 still retains the newest (and pinned).
	if _, err := r.GC(0); err != nil {
		t.Fatal(err)
	}
	vs, _ = r.Versions()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 5 {
		t.Fatalf("survivors after GC(0) %v, want [2 5]", vs)
	}
}

func TestConcurrentPublish(t *testing.T) {
	r := open(t)
	const n = 8
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := r.Publish([]byte("concurrent payload"), Manifest{})
			done <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != n || vs[0] != 1 || vs[n-1] != n {
		t.Fatalf("versions %v, want 1..%d", vs, n)
	}
}

func TestParseVersionDir(t *testing.T) {
	cases := map[string]int{
		"v0001": 1, "v0042": 42, "v12345": 12345,
		"v": 0, "vx": 0, "v-1": 0, "model": 0, ".tmp-v0001-x": 0, "v00": 0,
	}
	for name, want := range cases {
		if got := parseVersionDir(name); got != want {
			t.Errorf("parseVersionDir(%q) = %d, want %d", name, got, want)
		}
	}
}
