package registry

import (
	"strings"
)

// Promotion-wave annotations. A rolling fleet promotion records its
// progress on the candidate version's manifest, so any process sharing
// the registry — replicas, operators, a later wave — can see where the
// wave stands: which replica canaried it, how far adoption got, and how
// it ended. Annotations ride the manifest (payload untouched, checksum
// intact) and are written by a single wave controller at a time.
const (
	// WaveStateKey holds the wave's phase: one of the WaveState* values.
	WaveStateKey = "wave.state"
	// WaveCanaryKey names the replica that shadow-scored the candidate.
	WaveCanaryKey = "wave.canary"
	// WaveAdoptedKey lists the replicas serving this version,
	// comma-separated in adoption order.
	WaveAdoptedKey = "wave.adopted"
)

// Wave states, in lifecycle order.
const (
	// WaveStateCanary: the candidate is shadow-scoring on the canary.
	WaveStateCanary = "canary"
	// WaveStateRejected: the canary comparison failed; the fleet never
	// adopted the candidate.
	WaveStateRejected = "rejected"
	// WaveStatePromoting: the candidate won and is waving through the
	// fleet.
	WaveStatePromoting = "promoting"
	// WaveStateComplete: every replica adopted it and the guardrail
	// passed.
	WaveStateComplete = "complete"
	// WaveStateRolledBack: the post-promotion guardrail fired; the fleet
	// was re-pinned to the previous generation.
	WaveStateRolledBack = "rolled-back"
)

// WaveStatus is the decoded wave progress of one version.
type WaveStatus struct {
	// State is "" when no wave ever touched this version.
	State   string
	Canary  string
	Adopted []string
}

// SetWaveState records the wave phase on a candidate's manifest; canary,
// when non-empty, is recorded once alongside it.
func (r *Registry) SetWaveState(version int, state, canary string) error {
	kv := map[string]string{WaveStateKey: state}
	if canary != "" {
		kv[WaveCanaryKey] = canary
	}
	return r.Annotate(version, kv)
}

// MarkWaveAdopted appends a replica to the version's adoption list;
// re-marking an adopted replica is a no-op (a restarted replica re-syncs
// the same version).
func (r *Registry) MarkWaveAdopted(version int, member string) error {
	st, err := r.WaveStatus(version)
	if err != nil {
		return err
	}
	for _, m := range st.Adopted {
		if m == member {
			return nil
		}
	}
	st.Adopted = append(st.Adopted, member)
	return r.Annotate(version, map[string]string{WaveAdoptedKey: strings.Join(st.Adopted, ",")})
}

// WaveStatus reads a version's wave progress; a version no wave touched
// returns the zero status.
func (r *Registry) WaveStatus(version int) (WaveStatus, error) {
	m, err := r.Manifest(version)
	if err != nil {
		return WaveStatus{}, err
	}
	st := WaveStatus{
		State:  m.Annotations[WaveStateKey],
		Canary: m.Annotations[WaveCanaryKey],
	}
	if list := m.Annotations[WaveAdoptedKey]; list != "" {
		st.Adopted = strings.Split(list, ",")
	}
	return st, nil
}
