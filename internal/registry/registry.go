// Package registry is the model store of the paper's Figure 4 deployment:
// a filesystem-backed, versioned repository of trained pipeline artifacts
// that the training side publishes into and the serving side consumes
// live. Each published version is a directory
//
//	<root>/v0003/
//	    model.gob      the pipeline payload (trainer framing)
//	    manifest.json  schema version, SHA-256, created-at, train summary,
//	                   eval metrics
//
// written crash-safely: the payload and manifest land in a hidden temp
// directory, are fsynced, and the directory is renamed into place, so a
// crash mid-publish can never leave a half-published version visible.
// Every load re-verifies the payload against the manifest's SHA-256. A
// PINNED marker pins serving to a specific version while newer candidates
// are shadow-scored; GC(keep) prunes old versions but never the pinned or
// newest one.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ManifestSchemaVersion is the current manifest.json schema.
const ManifestSchemaVersion = 1

const (
	payloadFile  = "model.gob"
	manifestFile = "manifest.json"
	pinFile      = "PINNED"
	tmpPrefix    = ".tmp-"
)

// Typed registry errors, distinguished with errors.Is.
var (
	// ErrNotFound means the requested version does not exist.
	ErrNotFound = errors.New("registry: version not found")
	// ErrEmpty means the registry holds no published versions yet.
	ErrEmpty = errors.New("registry: no published versions")
	// ErrChecksum means the payload bytes do not match the manifest's
	// SHA-256 — the artifact was corrupted after publish.
	ErrChecksum = errors.New("registry: payload checksum mismatch")
	// ErrManifest means a version directory is missing its manifest or
	// the manifest is unreadable — a half-damaged version.
	ErrManifest = errors.New("registry: bad or missing manifest")
	// ErrNotPinned is returned by Unpin when no pin exists.
	ErrNotPinned = errors.New("registry: no version pinned")
)

// TrainSummary condenses the training configuration and dataset into the
// manifest, so an operator can tell versions apart from `tasq registry
// list` without loading them.
type TrainSummary struct {
	Loss      string `json:"loss,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Jobs      int    `json:"jobs,omitempty"`
	XGBTrees  int    `json:"xgb_trees,omitempty"`
	NNEpochs  int    `json:"nn_epochs,omitempty"`
	GNNEpochs int    `json:"gnn_epochs,omitempty"`
	SkipNN    bool   `json:"skip_nn,omitempty"`
	SkipGNN   bool   `json:"skip_gnn,omitempty"`
}

// Manifest describes one published version.
type Manifest struct {
	SchemaVersion int       `json:"schema_version"`
	Version       int       `json:"version"`
	CreatedAt     time.Time `json:"created_at"`
	// SHA256 is the hex digest of the payload file; verified on every
	// load.
	SHA256    string `json:"sha256"`
	SizeBytes int64  `json:"size_bytes"`
	// Format names the payload framing (currently "tasq-pipeline/v1").
	Format string       `json:"format"`
	Train  TrainSummary `json:"train,omitempty"`
	// Predictors lists the predictor set the published pipeline can
	// serve by name (trained models and baselines), in registration
	// order — what GET /v1/models will report once this version is
	// loaded.
	Predictors []string `json:"predictors,omitempty"`
	// EvalMetrics carries held-out evaluation numbers, e.g.
	// "runtime_median_ae" — the paper's Tables 4–6 error — so promotion
	// can be judged from the manifest.
	EvalMetrics map[string]float64 `json:"eval_metrics,omitempty"`
	Notes       string             `json:"notes,omitempty"`
	// Annotations are mutable operator/autopilot key/value notes (e.g.
	// promotion and rollback history) merged in after publish via
	// Annotate. They are the only mutable part of a manifest; the payload
	// and its checksum never change.
	Annotations map[string]string `json:"annotations,omitempty"`
}

// ReadHook intercepts payload bytes between the filesystem read and the
// checksum verification in Get. It exists for fault injection in chaos
// tests — simulating slow or corrupted artifact reads — and must return
// either the (possibly transformed) payload or an error. Corrupted bytes
// are caught downstream by the SHA-256 check exactly as real disk
// corruption would be.
type ReadHook func(version int, payload []byte) ([]byte, error)

// Registry is a filesystem-backed versioned model store. Safe for
// concurrent use within a process; cross-process publishers are
// serialized by the atomicity of rename.
type Registry struct {
	root     string
	mu       sync.Mutex // serializes in-process publish/pin/gc
	readHook atomic.Pointer[ReadHook]
}

// SetReadHook installs (or, with nil, removes) the payload read hook.
// Test-only: production reads go straight from disk to verification.
func (r *Registry) SetReadHook(h ReadHook) {
	if h == nil {
		r.readHook.Store(nil)
		return
	}
	r.readHook.Store(&h)
}

// Open opens (creating if needed) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Registry{root: dir}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// versionDir renders the canonical directory name for a version.
func versionDir(v int) string { return fmt.Sprintf("v%04d", v) }

// parseVersionDir extracts a version number from a directory name, or 0.
func parseVersionDir(name string) int {
	if !strings.HasPrefix(name, "v") {
		return 0
	}
	n := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	if len(name) < 2 {
		return 0
	}
	return n
}

// Versions lists the published version numbers in ascending order.
func (r *Registry) Versions() ([]int, error) {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if v := parseVersionDir(e.Name()); v > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Latest returns the newest published version number.
func (r *Registry) Latest() (int, error) {
	vs, err := r.Versions()
	if err != nil {
		return 0, err
	}
	if len(vs) == 0 {
		return 0, ErrEmpty
	}
	return vs[len(vs)-1], nil
}

// List returns the manifests of every published version, ascending.
// Versions whose manifest is damaged are reported as errors rather than
// skipped — a registry with a half-damaged version should be noticed.
func (r *Registry) List() ([]Manifest, error) {
	vs, err := r.Versions()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(vs))
	for _, v := range vs {
		m, err := r.Manifest(v)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Manifest reads and validates the manifest of one version.
func (r *Registry) Manifest(version int) (Manifest, error) {
	dir := filepath.Join(r.root, versionDir(version))
	if _, err := os.Stat(dir); err != nil {
		return Manifest{}, fmt.Errorf("%w: v%d", ErrNotFound, version)
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: v%d: %v", ErrManifest, version, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: v%d: %v", ErrManifest, version, err)
	}
	if m.Version != version {
		return Manifest{}, fmt.Errorf("%w: v%d manifest claims version %d", ErrManifest, version, m.Version)
	}
	if m.SHA256 == "" {
		return Manifest{}, fmt.Errorf("%w: v%d manifest has no checksum", ErrManifest, version)
	}
	return m, nil
}

// Get returns the payload bytes and manifest of a version, verifying the
// payload against the manifest's SHA-256.
func (r *Registry) Get(version int) ([]byte, Manifest, error) {
	m, err := r.Manifest(version)
	if err != nil {
		return nil, Manifest{}, err
	}
	payload, err := os.ReadFile(filepath.Join(r.root, versionDir(version), payloadFile))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: v%d: payload: %v", ErrManifest, version, err)
	}
	if hp := r.readHook.Load(); hp != nil {
		if payload, err = (*hp)(version, payload); err != nil {
			return nil, Manifest{}, fmt.Errorf("%w: v%d: payload: %v", ErrManifest, version, err)
		}
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != m.SHA256 {
		return nil, Manifest{}, fmt.Errorf("%w: v%d: payload %s, manifest %s", ErrChecksum, version, got, m.SHA256)
	}
	return payload, m, nil
}

// Publish writes a new version holding payload and returns its number.
// The manifest's Version, SchemaVersion, CreatedAt, SHA256 and SizeBytes
// fields are filled in here; callers supply Format, Train, EvalMetrics
// and Notes. The version directory appears atomically or not at all.
func (r *Registry) Publish(payload []byte, m Manifest) (int, error) {
	if len(payload) == 0 {
		return 0, errors.New("registry: empty payload")
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	sum := sha256.Sum256(payload)
	m.SchemaVersion = ManifestSchemaVersion
	m.SHA256 = hex.EncodeToString(sum[:])
	m.SizeBytes = int64(len(payload))
	if m.CreatedAt.IsZero() {
		m.CreatedAt = time.Now().UTC()
	}

	// A concurrent publisher in another process can win the rename race;
	// retry with the next number.
	for attempt := 0; attempt < 10; attempt++ {
		next, err := r.nextVersionLocked()
		if err != nil {
			return 0, err
		}
		m.Version = next
		ok, err := r.tryPublishLocked(payload, m)
		if err != nil {
			return 0, err
		}
		if ok {
			return next, nil
		}
	}
	return 0, errors.New("registry: publish retries exhausted (concurrent publishers)")
}

func (r *Registry) nextVersionLocked() (int, error) {
	vs, err := r.Versions()
	if err != nil {
		return 0, err
	}
	if len(vs) == 0 {
		return 1, nil
	}
	return vs[len(vs)-1] + 1, nil
}

// tryPublishLocked stages payload+manifest in a temp dir and renames it
// to the target version directory. Returns ok=false if the target
// appeared concurrently.
func (r *Registry) tryPublishLocked(payload []byte, m Manifest) (ok bool, err error) {
	manifest, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return false, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	manifest = append(manifest, '\n')

	tmp, err := os.MkdirTemp(r.root, tmpPrefix+versionDir(m.Version)+"-*")
	if err != nil {
		return false, fmt.Errorf("registry: %w", err)
	}
	defer func() {
		if !ok {
			os.RemoveAll(tmp)
		}
	}()
	if err := writeFileSynced(filepath.Join(tmp, payloadFile), payload); err != nil {
		return false, err
	}
	if err := writeFileSynced(filepath.Join(tmp, manifestFile), manifest); err != nil {
		return false, err
	}
	if err := syncPath(tmp); err != nil {
		return false, err
	}

	dst := filepath.Join(r.root, versionDir(m.Version))
	if err := os.Rename(tmp, dst); err != nil {
		if _, statErr := os.Stat(dst); statErr == nil {
			return false, nil // lost the race; caller retries with next number
		}
		return false, fmt.Errorf("registry: publishing v%d: %w", m.Version, err)
	}
	return true, syncPath(r.root)
}

// Pin marks a version as the one serving must use, regardless of newer
// publishes; newer versions become shadow candidates.
func (r *Registry) Pin(version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.Manifest(version); err != nil {
		return err
	}
	data := []byte(fmt.Sprintf("%d\n", version))
	if err := writeFileSynced(filepath.Join(r.root, pinFile+".tmp"), data); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(r.root, pinFile+".tmp"), filepath.Join(r.root, pinFile)); err != nil {
		return fmt.Errorf("registry: pinning v%d: %w", version, err)
	}
	return syncPath(r.root)
}

// Unpin removes the pin; serving follows the latest version again.
func (r *Registry) Unpin() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := os.Remove(filepath.Join(r.root, pinFile))
	if errors.Is(err, os.ErrNotExist) {
		return ErrNotPinned
	}
	if err != nil {
		return fmt.Errorf("registry: unpinning: %w", err)
	}
	return syncPath(r.root)
}

// Pinned returns the pinned version, or 0 if nothing is pinned.
func (r *Registry) Pinned() (int, error) {
	data, err := os.ReadFile(filepath.Join(r.root, pinFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("registry: reading pin: %w", err)
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &v); err != nil || v < 1 {
		return 0, fmt.Errorf("registry: corrupt pin file %q", strings.TrimSpace(string(data)))
	}
	return v, nil
}

// GC deletes all but the newest keep versions. The pinned version and the
// newest version are always retained, whatever keep says, as are the
// versions named by a live promotion record — in particular Previous, the
// rollback target, which must stay collectible-proof for as long as the
// guardrail might re-pin it. Stale temp directories from crashed
// publishes are swept too. Returns the versions removed.
func (r *Registry) GC(keep int) ([]int, error) {
	if keep < 1 {
		keep = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, err := r.Versions()
	if err != nil {
		return nil, err
	}
	pinned, err := r.Pinned()
	if err != nil {
		return nil, err
	}
	protected := map[int]bool{pinned: true}
	if promo, err := r.Promotion(); err == nil {
		protected[promo.Version] = true
		protected[promo.Previous] = true
	} else if !errors.Is(err, ErrNoPromotion) {
		return nil, err
	}
	var removed []int
	for i, v := range vs {
		if len(vs)-i <= keep || protected[v] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(r.root, versionDir(v))); err != nil {
			return removed, fmt.Errorf("registry: removing v%d: %w", v, err)
		}
		removed = append(removed, v)
	}
	// Sweep crash leftovers.
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return removed, fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
			_ = os.RemoveAll(filepath.Join(r.root, e.Name()))
		}
	}
	return removed, syncPath(r.root)
}

// writeFileSynced writes data and fsyncs before closing.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("registry: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("registry: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("registry: closing %s: %w", path, err)
	}
	return nil
}

// syncPath fsyncs a file or directory; the sync itself is best-effort
// (some filesystems refuse directory fsync) but the open is not.
func syncPath(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
