package registry

import (
	"fmt"
	"sync"
	"testing"
)

// TestCrossProcessPublishCollision drives the version-collision retry
// path the in-process mutex normally hides: two *independent* Registry
// instances over one directory — the moral equivalent of two tasqd
// processes sharing a filesystem registry — publish at the same instant,
// so both compute the same next version and one of them must lose the
// O_EXCL claim and retry. Every round must end with two distinct new
// versions, each payload intact under its checksum.
func TestCrossProcessPublishCollision(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 10
	for round := 0; round < rounds; round++ {
		payloadA := fmt.Sprintf("instance-a round %d", round)
		payloadB := fmt.Sprintf("instance-b round %d", round)

		var wg sync.WaitGroup
		start := make(chan struct{})
		results := make([]struct {
			v   int
			err error
		}, 2)
		for i, pub := range []struct {
			reg     *Registry
			payload string
		}{{a, payloadA}, {b, payloadB}} {
			wg.Add(1)
			go func(i int, reg *Registry, payload string) {
				defer wg.Done()
				<-start
				results[i].v, results[i].err = reg.Publish([]byte(payload), Manifest{Format: "test/raw"})
			}(i, pub.reg, pub.payload)
		}
		close(start)
		wg.Wait()

		for i, r := range results {
			if r.err != nil {
				t.Fatalf("round %d publisher %d: %v", round, i, r.err)
			}
		}
		if results[0].v == results[1].v {
			t.Fatalf("round %d: both publishers claimed v%d", round, results[0].v)
		}

		// Each instance reads the other's version back through the
		// checksum gate: a torn or half-claimed publish fails here.
		got, _, err := b.Get(results[0].v)
		if err != nil || string(got) != payloadA {
			t.Fatalf("round %d: b reading a's v%d: %q, %v", round, results[0].v, got, err)
		}
		got, _, err = a.Get(results[1].v)
		if err != nil || string(got) != payloadB {
			t.Fatalf("round %d: a reading b's v%d: %q, %v", round, results[1].v, got, err)
		}
	}

	// Both instances converge on the same dense version history.
	va, err := a.Versions()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 2*rounds || len(vb) != 2*rounds {
		t.Fatalf("version counts %d/%d, want %d", len(va), len(vb), 2*rounds)
	}
	for i, v := range va {
		if v != i+1 || vb[i] != i+1 {
			t.Fatalf("non-dense version history: a=%v b=%v", va, vb)
		}
	}
}
