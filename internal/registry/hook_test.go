package registry

import (
	"bytes"
	"errors"
	"testing"
)

// TestReadHook drives the fault-injection seam in Get: corrupted bytes
// are caught by the checksum verification, hook errors surface as
// ErrManifest, and removing the hook restores clean loads.
func TestReadHook(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("pipeline payload bytes")
	if _, err := reg.Publish(payload, Manifest{Format: "test/v1"}); err != nil {
		t.Fatal(err)
	}

	// No hook: clean load.
	got, _, err := reg.Get(1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean Get: %v %q", err, got)
	}

	// Corrupting hook: the SHA-256 check catches it like disk damage.
	reg.SetReadHook(func(version int, p []byte) ([]byte, error) {
		if version != 1 {
			t.Errorf("hook saw version %d, want 1", version)
		}
		out := append([]byte(nil), p...)
		out[0] ^= 0xFF
		return out, nil
	})
	if _, _, err := reg.Get(1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted Get: %v, want ErrChecksum", err)
	}

	// Erroring hook: a failed read maps to ErrManifest like any other
	// unreadable payload.
	hookErr := errors.New("injected read failure")
	reg.SetReadHook(func(int, []byte) ([]byte, error) { return nil, hookErr })
	if _, _, err := reg.Get(1); !errors.Is(err, ErrManifest) {
		t.Fatalf("erroring Get: %v, want ErrManifest", err)
	}

	// Removing the hook restores service.
	reg.SetReadHook(nil)
	if got, _, err := reg.Get(1); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after hook removal: %v %q", err, got)
	}
}
