package registry

import (
	"errors"
	"fmt"
	"testing"
)

func TestWaveAnnotations(t *testing.T) {
	r := open(t)
	v := publish(t, r, "candidate")

	// Untouched version: zero status, no error.
	st, err := r.WaveStatus(v)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "" || st.Canary != "" || len(st.Adopted) != 0 {
		t.Fatalf("fresh version wave status %+v, want zero", st)
	}

	if err := r.SetWaveState(v, WaveStateCanary, "r0"); err != nil {
		t.Fatal(err)
	}
	st, err = r.WaveStatus(v)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != WaveStateCanary || st.Canary != "r0" {
		t.Fatalf("wave status %+v, want canary/r0", st)
	}

	// A later state change without a canary argument keeps the recorded
	// canary.
	if err := r.SetWaveState(v, WaveStatePromoting, ""); err != nil {
		t.Fatal(err)
	}
	st, _ = r.WaveStatus(v)
	if st.State != WaveStatePromoting || st.Canary != "r0" {
		t.Fatalf("wave status %+v, want promoting with canary preserved", st)
	}

	for _, m := range []string{"r0", "r2", "r1"} {
		if err := r.MarkWaveAdopted(v, m); err != nil {
			t.Fatal(err)
		}
	}
	// Re-marking is idempotent: a restarted replica re-syncing the same
	// version must not duplicate itself.
	if err := r.MarkWaveAdopted(v, "r2"); err != nil {
		t.Fatal(err)
	}
	st, _ = r.WaveStatus(v)
	if got := fmt.Sprint(st.Adopted); got != "[r0 r2 r1]" {
		t.Fatalf("adopted %s, want [r0 r2 r1] (adoption order, no duplicates)", got)
	}

	// Annotations survive a reopen — they live in the manifest.
	r2, err := Open(r.Root())
	if err != nil {
		t.Fatal(err)
	}
	st, err = r2.WaveStatus(v)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != WaveStatePromoting || st.Canary != "r0" || len(st.Adopted) != 3 {
		t.Fatalf("reopened wave status %+v", st)
	}

	// The payload and its checksum are untouched by annotation rewrites.
	payload, m, err := r.Get(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "candidate" || m.SHA256 == "" {
		t.Fatalf("payload %q after annotations", payload)
	}

	if _, err := r.WaveStatus(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version error %v, want ErrNotFound", err)
	}
	if err := r.SetWaveState(99, WaveStateCanary, "r0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version error %v, want ErrNotFound", err)
	}
	if err := r.MarkWaveAdopted(99, "r0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version error %v, want ErrNotFound", err)
	}
}
