package registry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tasq/internal/jobrepo"
	"tasq/internal/scopesim"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

// smallPipeline trains a minimal pipeline for registry round-trips.
func smallPipeline(t *testing.T, seed int64) (*trainer.Pipeline, trainer.Config, int) {
	t.Helper()
	g := workload.New(workload.TestConfig(seed))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(30), &ex); err != nil {
		t.Fatal(err)
	}
	cfg := trainer.DefaultConfig(seed)
	cfg.XGB.NumTrees = 8
	cfg.SkipNN = true
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, cfg, repo.Len()
}

func TestPublishPipelineRoundTrip(t *testing.T) {
	r := open(t)
	p, cfg, jobs := smallPipeline(t, 41)
	v, err := r.PublishPipeline(p, Manifest{
		Train:       SummarizeTraining(cfg, jobs),
		EvalMetrics: map[string]float64{"runtime_median_ae": 0.12},
		Notes:       "unit test",
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, m, err := r.GetPipeline(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Format != PipelineFormat {
		t.Fatalf("format %q", m.Format)
	}
	if m.Train.Jobs != jobs || m.Train.XGBTrees != 8 || !m.Train.SkipGNN {
		t.Fatalf("train summary %+v", m.Train)
	}
	if m.EvalMetrics["runtime_median_ae"] != 0.12 {
		t.Fatalf("eval metrics %+v", m.EvalMetrics)
	}
	// The manifest records the publishable predictor set — the SkipNN +
	// SkipGNN pipeline still serves both XGBoost variants and the
	// baselines.
	want := p.TrainedPredictors()
	if len(m.Predictors) == 0 || len(m.Predictors) != len(want) {
		t.Fatalf("manifest predictors %v, want %v", m.Predictors, want)
	}
	for i := range want {
		if m.Predictors[i] != want[i] {
			t.Fatalf("manifest predictors %v, want %v", m.Predictors, want)
		}
	}
	// The loaded pipeline scores identically to the original.
	g := workload.New(workload.TestConfig(43))
	job := g.Job()
	c1, _, err := p.ScoreJob(job)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := loaded.ScoreJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if c1.A != c2.A || c1.B != c2.B {
		t.Fatalf("curve changed across registry round trip: %+v vs %+v", c1, c2)
	}
}

func TestGetPipelineRejectsForeignFormat(t *testing.T) {
	r := open(t)
	v, err := r.Publish([]byte("raw bytes, not a pipeline"), Manifest{Format: "other/fmt"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetPipeline(v); !errors.Is(err, ErrManifest) {
		t.Fatalf("foreign format error %v, want ErrManifest", err)
	}
}

// TestGetPipelineTruncatedPayload damages the payload and refreshes the
// registry checksum, so only the trainer-layer framing can catch it —
// the defense in depth the two checksum layers buy.
func TestGetPipelineTruncatedPayload(t *testing.T) {
	r := open(t)
	p, _, _ := smallPipeline(t, 47)
	v, err := r.PublishPipeline(p, Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(r.Root(), versionDir(v))
	payload, err := os.ReadFile(filepath.Join(dir, payloadFile))
	if err != nil {
		t.Fatal(err)
	}
	// Republished as a fresh version with a truncated payload and a
	// *valid* manifest checksum over the truncated bytes.
	v2, err := r.Publish(payload[:len(payload)/2], Manifest{Format: PipelineFormat})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.GetPipeline(v2)
	if !errors.Is(err, trainer.ErrCorrupt) {
		t.Fatalf("truncated pipeline error %v, want trainer.ErrCorrupt", err)
	}
}
