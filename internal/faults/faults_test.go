package faults

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestUnitDeterministicAndUniform pins the decision stream: pure in its
// inputs, stable across calls, spread over [0, 1), and decorrelated
// between sites and seeds.
func TestUnitDeterministicAndUniform(t *testing.T) {
	const n = 4096
	var sum float64
	for i := int64(0); i < n; i++ {
		u := Unit(42, SiteScoreError, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit(42, score.error, %d) = %v outside [0,1)", i, u)
		}
		if again := Unit(42, SiteScoreError, i); again != u {
			t.Fatalf("Unit not pure at n=%d: %v then %v", i, u, again)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean of %d draws = %v, want ~0.5", n, mean)
	}

	// Distinct sites and distinct seeds must give distinct streams.
	same := 0
	for i := int64(0); i < 64; i++ {
		if Unit(42, SiteScoreError, i) == Unit(42, SiteBatchItem, i) {
			same++
		}
		if Unit(42, SiteScoreError, i) == Unit(43, SiteScoreError, i) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between streams that must differ", same)
	}
}

// TestScheduleMatchesDecide pins Schedule as the prefix of Decide and
// checks the rate extremes: 0 never fires, 1 always fires.
func TestScheduleMatchesDecide(t *testing.T) {
	sched := Schedule(7, SiteScoreLatency, 0.3, 100)
	for i, fire := range sched {
		if fire != Decide(7, SiteScoreLatency, int64(i), 0.3) {
			t.Fatalf("schedule[%d] disagrees with Decide", i)
		}
	}
	for i, fire := range Schedule(7, SiteScoreLatency, 0, 50) {
		if fire {
			t.Fatalf("rate 0 fired at %d", i)
		}
	}
	for i, fire := range Schedule(7, SiteScoreLatency, 1, 50) {
		if !fire {
			t.Fatalf("rate 1 missed at %d", i)
		}
	}
	// A middling rate over a long prefix fires roughly that often.
	fired := 0
	for _, f := range Schedule(7, SiteScoreLatency, 0.3, 2000) {
		if f {
			fired++
		}
	}
	if frac := float64(fired) / 2000; math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("rate 0.3 fired %v of the time", frac)
	}
}

// TestParseProfile exercises the -fault-profile syntax: full spec,
// defaults, and each rejection.
func TestParseProfile(t *testing.T) {
	seed, p, err := ParseProfile("seed=42,latency=0.2:5ms,error=0.1,batch-item=0.05,registry-slow=0.1:10ms,registry-corrupt=0.02,replica-kill=0.03,replica-partition=0.04")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{
		LatencyRate: 0.2, Latency: 5 * time.Millisecond,
		ErrorRate: 0.1, BatchItemRate: 0.05,
		RegistrySlowRate: 0.1, RegistrySlow: 10 * time.Millisecond,
		RegistryCorruptRate:  0.02,
		ReplicaKillRate:      0.03,
		ReplicaPartitionRate: 0.04,
	}
	if seed != 42 || p != want {
		t.Fatalf("got seed=%d profile=%+v, want 42 %+v", seed, p, want)
	}

	// Empty spec: zero profile, default seed.
	if seed, p, err = ParseProfile("  "); err != nil || seed != 1 || !p.Zero() {
		t.Fatalf("empty spec: seed=%d profile=%+v err=%v", seed, p, err)
	}
	// Duration defaults apply when the :dur part is omitted.
	if _, p, err = ParseProfile("latency=0.5"); err != nil || p.Latency != 5*time.Millisecond {
		t.Fatalf("latency default: %+v err=%v", p, err)
	}
	if _, p, err = ParseProfile("registry-slow=0.5"); err != nil || p.RegistrySlow != 10*time.Millisecond {
		t.Fatalf("registry-slow default: %+v err=%v", p, err)
	}

	for _, bad := range []string{
		"latency",            // no value
		"latency=",           // empty value
		"error=1.5",          // rate out of range
		"error=-0.1",         // negative rate
		"error=abc",          // not a number
		"latency=0.1:xyz",    // bad duration
		"latency=0.1:-5ms",   // negative duration
		"seed=abc",           // bad seed
		"unknown-fault=0.5",  // unknown key
		"registry-corrupt=2", // rate out of range
		"replica-kill=7",     // rate out of range
		"replica-partition=", // empty value
	} {
		if _, _, err := ParseProfile(bad); err == nil {
			t.Fatalf("ParseProfile(%q) accepted", bad)
		}
	}
}

// TestCorrupt pins the corruption primitive: exactly one byte differs, the
// input is untouched, and empty input is passed through.
func TestCorrupt(t *testing.T) {
	in := []byte("hello registry payload")
	orig := append([]byte(nil), in...)
	out := Corrupt(in)
	if !bytes.Equal(in, orig) {
		t.Fatal("Corrupt mutated its input")
	}
	if len(out) != len(in) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	diff := 0
	for i := range in {
		if in[i] != out[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
	if got := Corrupt(nil); len(got) != 0 {
		t.Fatalf("Corrupt(nil) = %v", got)
	}
}

// TestInjectorFollowsSchedule drives every site and checks the injector's
// recorded firings reproduce the pure schedule — the determinism contract
// Verify enforces.
func TestInjectorFollowsSchedule(t *testing.T) {
	p := Profile{
		LatencyRate: 0.5, Latency: time.Microsecond,
		ErrorRate: 0.3, BatchItemRate: 0.4,
		RegistryCorruptRate: 0.5,
	}
	in := New(99, p)

	var latencies, errs, items []bool
	var corrupts []bool
	payload := []byte("payload-bytes")
	for i := 0; i < 200; i++ {
		latencies = append(latencies, in.Latency() > 0)
		errs = append(errs, in.ScoreError() != nil)
		items = append(items, in.BatchItemError() != nil)
		out, err := in.RegistryRead(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		corrupts = append(corrupts, !bytes.Equal(out, payload))
	}
	for site, got := range map[string][]bool{
		SiteScoreLatency:    latencies,
		SiteScoreError:      errs,
		SiteBatchItem:       items,
		SiteRegistryCorrupt: corrupts,
	} {
		want := Schedule(99, site, p.rateFor(site), len(got))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s draw %d: injector %v, schedule %v", site, i, got[i], want[i])
			}
		}
	}
	if err := in.Verify(); err != nil {
		t.Fatal(err)
	}

	// Injected errors unwrap to ErrInjected.
	full := New(1, Profile{ErrorRate: 1, BatchItemRate: 1})
	if err := full.ScoreError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("ScoreError = %v, want ErrInjected", err)
	}
	if err := full.BatchItemError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("BatchItemError = %v, want ErrInjected", err)
	}
}

// TestInjectorDisabled proves SetEnabled(false) consumes no draws, so
// re-enabling resumes the schedule exactly where it left off.
func TestInjectorDisabled(t *testing.T) {
	in := New(5, Profile{ErrorRate: 1})
	if err := in.ScoreError(); err == nil {
		t.Fatal("enabled injector at rate 1 did not fire")
	}
	in.SetEnabled(false)
	if in.Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	for i := 0; i < 10; i++ {
		if err := in.ScoreError(); err != nil {
			t.Fatal("disabled injector fired")
		}
		if d := in.Latency(); d != 0 {
			t.Fatal("disabled injector delayed")
		}
	}
	if got := in.Stats()[SiteScoreError].Draws; got != 1 {
		t.Fatalf("disabled draws consumed stream: draws=%d, want 1", got)
	}
	in.SetEnabled(true)
	// Draw 1 of the schedule at rate 1 fires.
	if err := in.ScoreError(); err == nil {
		t.Fatal("re-enabled injector did not resume schedule")
	}
	if err := in.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorNilSafe: a nil injector is a no-op so call sites need no
// guards.
func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Latency() != 0 || in.ScoreError() != nil || in.BatchItemError() != nil {
		t.Fatal("nil injector injected")
	}
	b := []byte("x")
	if out, err := in.RegistryRead(1, b); err != nil || !bytes.Equal(out, b) {
		t.Fatalf("nil RegistryRead: %v %v", out, err)
	}
}

// TestInjectorConcurrentVerify hammers one injector from many goroutines:
// total firings must still reconcile with the pure schedule (Verify), and
// stats must account for every draw.
func TestInjectorConcurrentVerify(t *testing.T) {
	in := New(1234, Profile{ErrorRate: 0.37})
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.ScoreError()
			}
		}()
	}
	wg.Wait()
	st := in.Stats()[SiteScoreError]
	if st.Draws != workers*per {
		t.Fatalf("draws=%d, want %d", st.Draws, workers*per)
	}
	if err := in.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyCatchesMismatch: Verify must fail when recorded firings
// diverge from the schedule (simulated by poking the counter).
func TestVerifyCatchesMismatch(t *testing.T) {
	in := New(8, Profile{ErrorRate: 0.5})
	for i := 0; i < 50; i++ {
		in.ScoreError()
	}
	in.site(SiteScoreError).fired.Add(1)
	err := in.Verify()
	if err == nil || !strings.Contains(err.Error(), SiteScoreError) {
		t.Fatalf("Verify after tamper: %v", err)
	}
}

// TestRegistryReadSlow pins that the slow site delays without corrupting.
func TestRegistryReadSlow(t *testing.T) {
	in := New(3, Profile{RegistrySlowRate: 1, RegistrySlow: time.Millisecond})
	payload := []byte("bytes")
	start := time.Now()
	out, err := in.RegistryRead(2, payload)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("slow read altered payload: %v %v", out, err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("slow read did not delay")
	}
	if st := in.Stats()[SiteRegistrySlow]; st.Fired != 1 {
		t.Fatalf("slow site stats %+v", st)
	}
}

// TestReplicaSites pins the fleet chaos sites: decisions are pure
// functions of (seed, step), the two sites draw independent streams, and
// Verify reconciles recorded firings against the schedule.
func TestReplicaSites(t *testing.T) {
	in := New(77, Profile{ReplicaKillRate: 0.3, ReplicaPartitionRate: 0.4})
	const steps = 200
	var kills, parts []bool
	for i := 0; i < steps; i++ {
		kills = append(kills, in.ReplicaKill())
		parts = append(parts, in.ReplicaPartition())
	}
	wantKills := Schedule(77, SiteReplicaKill, 0.3, steps)
	wantParts := Schedule(77, SiteReplicaPartition, 0.4, steps)
	for i := 0; i < steps; i++ {
		if kills[i] != wantKills[i] {
			t.Fatalf("kill step %d: got %v, schedule says %v", i, kills[i], wantKills[i])
		}
		if parts[i] != wantParts[i] {
			t.Fatalf("partition step %d: got %v, schedule says %v", i, parts[i], wantParts[i])
		}
	}
	if err := in.Verify(); err != nil {
		t.Fatal(err)
	}
	// A disabled injector consumes no draws, so re-enabling resumes the
	// schedule exactly — the recovery-phase guarantee.
	in.SetEnabled(false)
	if in.ReplicaKill() || in.ReplicaPartition() {
		t.Fatal("disabled injector fired")
	}
	st := in.Stats()
	if st[SiteReplicaKill].Draws != steps || st[SiteReplicaPartition].Draws != steps {
		t.Fatalf("disabled draws consumed: %+v", st)
	}
}
