// Package faults is the deterministic fault injector behind the serving
// stack's chaos and soak testing. Production serving at the paper's scale
// (Cosmos/SCOPE operators tolerating transient infrastructure failure)
// demands that the scoring service degrade gracefully; this package makes
// those failures *reproducible* so tests can assert on them.
//
// Determinism is the design constraint, exactly as in internal/parallel:
// every injection decision is a pure function of (seed, site, n) — the
// SplitMix64 finalizer over the seed, a site-name hash and the site's n-th
// draw — never of wall-clock time or goroutine identity. Same seed ⇒ same
// per-site fault schedule, so a chaos run that fails can be replayed
// byte-for-byte. The schedule for any prefix can be recomputed offline
// with Schedule and cross-checked against an Injector's recorded stats
// with Verify.
//
// The injector is wired into the serving stack through test-only hooks
// and the `tasqd -fault-profile` dev flag: injected scoring latency,
// synthetic 5xx scoring errors, per-item batch failures, and slow or
// corrupt registry artifact reads.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a synthetic failure produced by the injector; the
// serving stack maps it to HTTP 500 like any other internal error.
var ErrInjected = errors.New("faults: injected failure")

// Injection sites. Each site draws from its own deterministic decision
// stream, so enabling one fault type never perturbs another's schedule.
const (
	SiteScoreLatency     = "score.latency"
	SiteScoreError       = "score.error"
	SiteBatchItem        = "batch.item"
	SiteRegistrySlow     = "registry.slow"
	SiteRegistryCorrupt  = "registry.corrupt"
	SiteReplicaKill      = "replica.kill"
	SiteReplicaPartition = "replica.partition"
)

// Profile describes the fault mix: a firing probability per site plus the
// injected magnitude where one applies. The zero Profile injects nothing.
type Profile struct {
	// LatencyRate is the probability a scoring request is delayed by
	// Latency before the model runs.
	LatencyRate float64
	Latency     time.Duration
	// ErrorRate is the probability a scoring request fails with a
	// synthetic internal error (HTTP 500).
	ErrorRate float64
	// BatchItemRate is the probability an individual batch item fails
	// with a synthetic per-item 500, independent of its siblings.
	BatchItemRate float64
	// RegistrySlowRate is the probability a registry payload read is
	// delayed by RegistrySlow — disk/remote-store latency variance.
	RegistrySlowRate float64
	RegistrySlow     time.Duration
	// RegistryCorruptRate is the probability a registry payload read
	// returns corrupted bytes, which the registry's checksum verification
	// must catch.
	RegistryCorruptRate float64
	// ReplicaKillRate is the probability a fleet chaos step kills one
	// replica (drain + process death; the harness restarts it later).
	ReplicaKillRate float64
	// ReplicaPartitionRate is the probability a fleet chaos step network-
	// partitions one replica: its listener refuses every request until the
	// partition heals.
	ReplicaPartitionRate float64
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool { return p == Profile{} }

// rateFor maps a site name to its profile rate.
func (p Profile) rateFor(site string) float64 {
	switch site {
	case SiteScoreLatency:
		return p.LatencyRate
	case SiteScoreError:
		return p.ErrorRate
	case SiteBatchItem:
		return p.BatchItemRate
	case SiteRegistrySlow:
		return p.RegistrySlowRate
	case SiteRegistryCorrupt:
		return p.RegistryCorruptRate
	case SiteReplicaKill:
		return p.ReplicaKillRate
	case SiteReplicaPartition:
		return p.ReplicaPartitionRate
	}
	return 0
}

// Sites lists every injection site in deterministic order.
func Sites() []string {
	return []string{
		SiteScoreLatency, SiteScoreError, SiteBatchItem,
		SiteRegistrySlow, SiteRegistryCorrupt,
		SiteReplicaKill, SiteReplicaPartition,
	}
}

// ParseProfile parses the `-fault-profile` flag syntax: comma-separated
// key=value fields, where rate-only faults take a probability in [0, 1]
// and rate+magnitude faults take `rate:duration`.
//
//	seed=42,latency=0.2:5ms,error=0.1,batch-item=0.05,registry-slow=0.1:10ms,registry-corrupt=0.02
//
// Omitted fields inject nothing; an omitted seed defaults to 1. An empty
// spec returns the zero profile.
func ParseProfile(spec string) (seed int64, p Profile, err error) {
	seed = 1
	if strings.TrimSpace(spec) == "" {
		return seed, p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || val == "" {
			return 0, Profile{}, fmt.Errorf("faults: field %q: want key=value", field)
		}
		switch key {
		case "seed":
			seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				return 0, Profile{}, fmt.Errorf("faults: seed %q: %v", val, err)
			}
		case "latency":
			if err := parseRateDur(val, 5*time.Millisecond, &p.LatencyRate, &p.Latency); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: latency %q: %v", val, err)
			}
		case "error":
			if err := parseRate(val, &p.ErrorRate); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: error %q: %v", val, err)
			}
		case "batch-item":
			if err := parseRate(val, &p.BatchItemRate); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: batch-item %q: %v", val, err)
			}
		case "registry-slow":
			if err := parseRateDur(val, 10*time.Millisecond, &p.RegistrySlowRate, &p.RegistrySlow); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: registry-slow %q: %v", val, err)
			}
		case "registry-corrupt":
			if err := parseRate(val, &p.RegistryCorruptRate); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: registry-corrupt %q: %v", val, err)
			}
		case "replica-kill":
			if err := parseRate(val, &p.ReplicaKillRate); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: replica-kill %q: %v", val, err)
			}
		case "replica-partition":
			if err := parseRate(val, &p.ReplicaPartitionRate); err != nil {
				return 0, Profile{}, fmt.Errorf("faults: replica-partition %q: %v", val, err)
			}
		default:
			return 0, Profile{}, fmt.Errorf("faults: unknown field %q", key)
		}
	}
	return seed, p, nil
}

func parseRate(s string, rate *float64) error {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	if r < 0 || r > 1 {
		return fmt.Errorf("rate %v outside [0, 1]", r)
	}
	*rate = r
	return nil
}

func parseRateDur(s string, def time.Duration, rate *float64, dur *time.Duration) error {
	rs, ds, ok := strings.Cut(s, ":")
	if err := parseRate(rs, rate); err != nil {
		return err
	}
	*dur = def
	if ok {
		d, err := time.ParseDuration(ds)
		if err != nil {
			return err
		}
		if d < 0 {
			return fmt.Errorf("negative duration %v", d)
		}
		*dur = d
	}
	return nil
}

// Unit is the pure decision stream: the n-th uniform [0, 1) draw of a
// site under a seed, via the SplitMix64 finalizer over the seed, an
// FNV-1a hash of the site name, and the draw index. The finalizer's
// avalanche behaviour keeps neighbouring draws statistically independent
// even though the inputs are highly correlated.
func Unit(seed int64, site string, n int64) float64 {
	z := uint64(seed) ^ fnv1a(site)
	z += 0x9e3779b97f4a7c15 * (uint64(n) + 1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Decide reports whether the n-th draw of a site fires at the given rate
// — the pure function every Injector decision reduces to.
func Decide(seed int64, site string, n int64, rate float64) bool {
	return rate > 0 && Unit(seed, site, n) < rate
}

// Schedule returns the first n decisions of a site — the deterministic
// fault schedule a same-seed rerun must reproduce. Tests assert equality
// of schedules across runs and consistency of an Injector's recorded
// firings against them (Verify).
func Schedule(seed int64, site string, rate float64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = Decide(seed, site, int64(i), rate)
	}
	return out
}

// Corrupt returns a copy of b with one byte flipped (the middle one), the
// minimal corruption that must trip any checksum verification. Empty
// input comes back empty.
func Corrupt(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0xFF
	}
	return out
}

// SiteStats records how often a site was consulted and how often it fired.
type SiteStats struct {
	Draws int64
	Fired int64
}

// siteCounter is the lock-free per-site draw counter.
type siteCounter struct {
	draws atomic.Int64
	fired atomic.Int64
}

// Injector hands out fault decisions from per-site deterministic streams.
// Safe for concurrent use: the n-th draw of a site always answers from
// decision n of the pure schedule, whichever goroutine makes it.
type Injector struct {
	seed    int64
	profile Profile
	enabled atomic.Bool

	mu    sync.Mutex
	sites map[string]*siteCounter
}

// New builds an enabled injector over a seed and profile.
func New(seed int64, p Profile) *Injector {
	in := &Injector{seed: seed, profile: p, sites: make(map[string]*siteCounter)}
	in.enabled.Store(true)
	return in
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// Profile returns the injector's fault profile.
func (in *Injector) Profile() Profile { return in.profile }

// SetEnabled gates all injection without perturbing the schedules: while
// disabled no draws are consumed, so re-enabling resumes exactly where
// the schedule left off. Chaos harnesses disable faults to prove the
// stack recovers to 100% success once the storm clears.
func (in *Injector) SetEnabled(v bool) { in.enabled.Store(v) }

// Enabled reports whether the injector is active.
func (in *Injector) Enabled() bool { return in.enabled.Load() }

func (in *Injector) site(name string) *siteCounter {
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		s = &siteCounter{}
		in.sites[name] = s
	}
	return s
}

// draw consumes the next decision of a site.
func (in *Injector) draw(site string, rate float64) bool {
	if in == nil || rate <= 0 || !in.enabled.Load() {
		return false
	}
	s := in.site(site)
	n := s.draws.Add(1) - 1
	if Decide(in.seed, site, n, rate) {
		s.fired.Add(1)
		return true
	}
	return false
}

// Latency returns the injected delay for the next scoring request, or 0.
func (in *Injector) Latency() time.Duration {
	if in != nil && in.draw(SiteScoreLatency, in.profile.LatencyRate) {
		return in.profile.Latency
	}
	return 0
}

// ScoreError returns the synthetic failure for the next scoring request,
// or nil.
func (in *Injector) ScoreError() error {
	if in != nil && in.draw(SiteScoreError, in.profile.ErrorRate) {
		return fmt.Errorf("%w: score", ErrInjected)
	}
	return nil
}

// BatchItemError returns the synthetic failure for the next batch item,
// or nil.
func (in *Injector) BatchItemError() error {
	if in != nil && in.draw(SiteBatchItem, in.profile.BatchItemRate) {
		return fmt.Errorf("%w: batch item", ErrInjected)
	}
	return nil
}

// ReplicaKill reports whether the next fleet chaos step should kill a
// replica. The fleet harness consults this once per logical step, so the
// kill schedule — like every other site — is a pure function of
// (seed, step index).
func (in *Injector) ReplicaKill() bool {
	return in != nil && in.draw(SiteReplicaKill, in.profile.ReplicaKillRate)
}

// ReplicaPartition reports whether the next fleet chaos step should
// partition a replica off the network.
func (in *Injector) ReplicaPartition() bool {
	return in != nil && in.draw(SiteReplicaPartition, in.profile.ReplicaPartitionRate)
}

// RegistryRead is the registry read hook: it delays and/or corrupts a
// payload read according to the schedule. The signature matches
// registry.ReadHook so `reg.SetReadHook(inj.RegistryRead)` wires it up
// without this package importing the registry.
func (in *Injector) RegistryRead(version int, payload []byte) ([]byte, error) {
	if in == nil {
		return payload, nil
	}
	if in.draw(SiteRegistrySlow, in.profile.RegistrySlowRate) {
		time.Sleep(in.profile.RegistrySlow)
	}
	if in.draw(SiteRegistryCorrupt, in.profile.RegistryCorruptRate) {
		return Corrupt(payload), nil
	}
	return payload, nil
}

// Stats snapshots the per-site draw and fire counts, keyed by site name.
func (in *Injector) Stats() map[string]SiteStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.sites))
	for name, s := range in.sites {
		out[name] = SiteStats{Draws: s.draws.Load(), Fired: s.fired.Load()}
	}
	return out
}

// Verify cross-checks the injector's recorded behaviour against the pure
// schedule: for every consulted site, the number of firings must equal
// the number of true decisions in the schedule prefix of length Draws.
// A mismatch means determinism was broken.
func (in *Injector) Verify() error {
	var bad []string
	for site, st := range in.Stats() {
		want := int64(0)
		for _, fire := range Schedule(in.seed, site, in.profile.rateFor(site), int(st.Draws)) {
			if fire {
				want++
			}
		}
		if st.Fired != want {
			bad = append(bad, fmt.Sprintf("%s: fired %d, schedule says %d over %d draws", site, st.Fired, want, st.Draws))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("faults: schedule mismatch: %s", strings.Join(bad, "; "))
	}
	return nil
}
