package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centroids  [][]float64 // k centroids, each of dimension d
	Labels     []int       // cluster index per input point
	Inertia    float64     // sum of squared distances to assigned centroids
	Iterations int         // iterations until convergence (or the cap)
}

// KMeans clusters points (n x d) into k clusters using Lloyd's algorithm
// with k-means++ seeding. The rng makes runs reproducible. maxIter bounds
// the number of Lloyd iterations (25 is plenty for the workloads here).
func KMeans(points [][]float64, k, maxIter int, rng *rand.Rand) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("stats: kmeans on empty input")
	}
	if k < 1 {
		return nil, fmt.Errorf("stats: kmeans k=%d < 1", k)
	}
	if k > n {
		return nil, fmt.Errorf("stats: kmeans k=%d > n=%d", k, n)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("stats: kmeans point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	if maxIter < 1 {
		maxIter = 25
	}

	centroids := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, cent := range centroids {
				if dist := sqDist(p, cent); dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centroids; an emptied cluster keeps its old centroid.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[labels[i]])
	}
	return &KMeansResult{Centroids: centroids, Labels: labels, Inertia: inertia, Iterations: iter}, nil
}

// Predict returns the index of the nearest centroid to p.
func (r *KMeansResult) Predict(p []float64) int {
	best, bestDist := 0, math.Inf(1)
	for c, cent := range r.Centroids {
		if dist := sqDist(p, cent); dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

// ClusterProportions returns the fraction of labels assigned to each of the
// k clusters.
func ClusterProportions(labels []int, k int) []float64 {
	out := make([]float64, k)
	if len(labels) == 0 {
		return out
	}
	for _, l := range labels {
		if l >= 0 && l < k {
			out[l]++
		}
	}
	for i := range out {
		out[i] /= float64(len(labels))
	}
	return out
}

// seedPlusPlus implements k-means++ initialization: the first centroid is
// uniform-random, each subsequent one is sampled proportional to squared
// distance from the nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), points[rng.Intn(n)]...)
	centroids = append(centroids, first)
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points identical to centroids
		} else {
			r := rng.Float64() * total
			for i, d := range dists {
				r -= d
				if r <= 0 {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
