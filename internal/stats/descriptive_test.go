package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max must be infinities")
	}
	if Histogram(nil, 4) != nil {
		t.Fatal("empty histogram must be nil")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAEAndAPE(t *testing.T) {
	pred := []float64{110, 90, 50}
	truth := []float64{100, 100, 100}
	if got := MAE(pred, truth); !almostEqual(got, (10+10+50)/3.0, 1e-12) {
		t.Fatalf("MAE = %v", got)
	}
	if got := MedianAPE(pred, truth); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("MedianAPE = %v, want 0.1", got)
	}
	if got := MeanAPE(pred, truth); !almostEqual(got, 0.7/3, 1e-12) {
		t.Fatalf("MeanAPE = %v", got)
	}
}

func TestAbsPercentErrorsSkipsZeroTruth(t *testing.T) {
	got := AbsPercentErrors([]float64{1, 2}, []float64{0, 4})
	if len(got) != 1 || !almostEqual(got[0], 0.5, 1e-12) {
		t.Fatalf("got %v, want [0.5]", got)
	}
}

func TestMAEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	grid := []float64{0, 1, 2, 3, 4}
	got := ECDF(xs, grid)
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("ecdf = %v, want %v", got, want)
		}
	}
}

func TestECDFProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		grid := []float64{-10, -1, 0, 1, 10}
		cdf := ECDF(xs, grid)
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return cdf[len(cdf)-1] == 1 // grid max exceeds all samples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	bins := Histogram(xs, 5)
	if len(bins) != 5 {
		t.Fatalf("got %d bins, want 5", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Fatalf("histogram counts %d, want %d", total, len(xs))
	}
	if bins[0].Count != 2 || bins[4].Count != 2 {
		t.Fatalf("unexpected bin counts: %+v", bins)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bins := Histogram([]float64{5, 5, 5}, 4)
	if len(bins) != 1 || bins[0].Count != 3 {
		t.Fatalf("degenerate histogram = %+v", bins)
	}
}

func TestHistogramConservesCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		n := 1 + rng.Intn(12)
		total := 0
		for _, b := range Histogram(xs, n) {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardizerRoundTrip(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	s := FitStandardizer(xs)
	for _, x := range xs {
		if got := s.Inverse(s.Transform(x)); !almostEqual(got, x, 1e-9) {
			t.Fatalf("round trip %v -> %v", x, got)
		}
	}
	z := make([]float64, len(xs))
	for i, x := range xs {
		z[i] = s.Transform(x)
	}
	if !almostEqual(Mean(z), 0, 1e-9) || !almostEqual(StdDev(z), 1, 1e-9) {
		t.Fatalf("standardized mean/std = %v/%v", Mean(z), StdDev(z))
	}
}

func TestStandardizerConstantInput(t *testing.T) {
	s := FitStandardizer([]float64{7, 7, 7})
	if got := s.Transform(7); got != 0 {
		t.Fatalf("transform of constant = %v, want 0", got)
	}
	if got := s.Transform(8); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("constant-input standardizer must stay finite, got %v", got)
	}
}
