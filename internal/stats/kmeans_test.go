package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs returns well-separated clusters for deterministic assertions.
func threeBlobs(rng *rand.Rand, perCluster int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var pts [][]float64
	var truth []int
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			pts = append(pts, []float64{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts, truth := threeBlobs(rng, 30)
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same true label must share a predicted label.
	for c := 0; c < 3; c++ {
		var label = -1
		for i := range pts {
			if truth[i] != c {
				continue
			}
			if label == -1 {
				label = res.Labels[i]
			} else if res.Labels[i] != label {
				t.Fatalf("cluster %d split across labels", c)
			}
		}
	}
	if res.Inertia > float64(len(pts)) { // ~0.5 stddev blobs: inertia per point << 1
		t.Fatalf("inertia %v too high for separated blobs", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 2, 10, rng); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 10, rng); err == nil {
		t.Fatal("expected error on k<1")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 10, rng); err == nil {
		t.Fatal("expected error on k>n")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, 10, rng); err == nil {
		t.Fatal("expected error on ragged input")
	}
}

func TestKMeansPredictConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := threeBlobs(rng, 20)
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got := res.Predict(p); got != res.Labels[i] {
			t.Fatalf("Predict(point %d) = %d, label = %d", i, got, res.Labels[i])
		}
	}
}

func TestKMeansLabelsInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		k := 1 + rng.Intn(3)
		res, err := KMeans(pts, k, 25, rng)
		if err != nil {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
		}
		props := ClusterProportions(res.Labels, k)
		var sum float64
		for _, p := range props {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterProportionsEmpty(t *testing.T) {
	props := ClusterProportions(nil, 3)
	for _, p := range props {
		if p != 0 {
			t.Fatal("empty labels must give zero proportions")
		}
	}
}

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(xs, xs); got != 0 {
		t.Fatalf("KS(same, same) = %v, want 0", got)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSStatistic(a, b); got != 1 {
		t.Fatalf("KS(disjoint) = %v, want 1", got)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,2,3,4}, b = {3,4,5,6}: max CDF gap at x=2 is |0.5 − 0| = 0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if got := KSStatistic(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", got)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if KSStatistic(nil, []float64{1}) != 1 {
		t.Fatal("empty sample must give KS = 1")
	}
}

func TestKSStatisticSymmetryAndRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+rng.Intn(30))
		b := make([]float64, 1+rng.Intn(30))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 0.5
		}
		d1, d2 := KSStatistic(a, b), KSStatistic(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSPValueBehavior(t *testing.T) {
	// Small statistic on large samples → high p; large statistic → low p.
	if p := KSPValue(0.01, 1000, 1000); p < 0.9 {
		t.Fatalf("p for tiny d = %v, want near 1", p)
	}
	if p := KSPValue(0.9, 1000, 1000); p > 1e-6 {
		t.Fatalf("p for huge d = %v, want near 0", p)
	}
	if p := KSPValue(0.5, 0, 10); p != 0 {
		t.Fatalf("p with empty sample = %v, want 0", p)
	}
}

func TestKSSameDistributionSmallStat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if d := KSStatistic(a, b); d > 0.15 {
		t.Fatalf("KS between same-distribution samples = %v, want small", d)
	}
}
