package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic between
// samples a and b: the supremum of the absolute difference between their
// empirical CDFs. A lower value means the distributions are closer. Returns
// 1 if either sample is empty (maximal distance by convention).
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue approximates the asymptotic p-value of the two-sample KS test
// for statistic d with sample sizes n and m, using the Kolmogorov
// distribution's series expansion. Small p means the samples likely come
// from different distributions.
func KSPValue(d float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 0
	}
	ne := float64(n*m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Q_KS(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
