// Package stats supplies the statistical machinery TASQ's evaluation
// protocol needs: descriptive statistics, quantiles, empirical CDFs and
// histograms for the error analyses (§5.2–§5.4 of the paper), k-means
// clustering and the Kolmogorov–Smirnov test for the flighting job-selection
// procedure (§5.1).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or 0 if xs is empty.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It copies xs, so the input is not
// reordered. Returns 0 for empty input; q is clamped to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value in xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MAE returns the mean absolute error between pred and truth, which must be
// equal length. Returns 0 for empty input.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// AbsPercentErrors returns |pred−truth|/|truth| (as fractions, not
// percentages) for each pair. Pairs with zero truth are skipped.
func AbsPercentErrors(pred, truth []float64) []float64 {
	if len(pred) != len(truth) {
		panic("stats: AbsPercentErrors length mismatch")
	}
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		out = append(out, math.Abs(pred[i]-truth[i])/math.Abs(truth[i]))
	}
	return out
}

// MedianAPE returns the median absolute percentage error (as a fraction)
// between pred and truth.
func MedianAPE(pred, truth []float64) float64 {
	return Median(AbsPercentErrors(pred, truth))
}

// MeanAPE returns the mean absolute percentage error (as a fraction)
// between pred and truth.
func MeanAPE(pred, truth []float64) float64 {
	return Mean(AbsPercentErrors(pred, truth))
}

// ECDF returns the empirical CDF evaluated at each point in grid: the
// fraction of xs less than or equal to the grid value.
func ECDF(xs, grid []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(grid))
	if len(sorted) == 0 {
		return out
	}
	for i, g := range grid {
		// Number of samples ≤ g.
		n := sort.SearchFloat64s(sorted, math.Nextafter(g, math.Inf(1)))
		out[i] = float64(n) / float64(len(sorted))
	}
	return out
}

// HistogramBin is one bin of a Histogram.
type HistogramBin struct {
	Lo, Hi float64 // [Lo, Hi) except the last bin, which is inclusive
	Count  int
}

// Histogram divides [min, max] of xs into n equal-width bins and counts
// samples per bin. Returns nil for empty input or n < 1.
func Histogram(xs []float64, n int) []HistogramBin {
	if len(xs) == 0 || n < 1 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		return []HistogramBin{{Lo: lo, Hi: hi, Count: len(xs)}}
	}
	width := (hi - lo) / float64(n)
	bins := make([]HistogramBin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	bins[n-1].Hi = hi
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// Standardizer rescales values to zero mean and unit variance, remembering
// the statistics so predictions can be mapped back.
type Standardizer struct {
	Mean, Std float64
}

// FitStandardizer computes mean and standard deviation of xs. A zero (or
// near-zero) spread falls back to Std = 1 so Transform stays finite.
func FitStandardizer(xs []float64) Standardizer {
	s := Standardizer{Mean: Mean(xs), Std: StdDev(xs)}
	if s.Std < 1e-12 {
		s.Std = 1
	}
	return s
}

// Transform maps x into standardized space.
func (s Standardizer) Transform(x float64) float64 { return (x - s.Mean) / s.Std }

// Inverse maps a standardized value back to the original space.
func (s Standardizer) Inverse(z float64) float64 { return z*s.Std + s.Mean }
