module tasq

go 1.22
