# Development targets for the TASQ reproduction.
#
#   make build   compile everything
#   make test    tier-1 verification (go build + go test)
#   make race    race-detector pass over the concurrent serving path
#   make check   full gate: vet + build + tests + race (run before merging)

GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The serving path shares one pipeline across handler goroutines; keep it
# provably race-clean.
race:
	$(GO) test -race ./internal/serve/... ./internal/obs/... ./cmd/tasqd/...

check: vet test race
	@echo "check: ok"
