# Development targets for the TASQ reproduction.
#
#   make build   compile everything
#   make test    tier-1 verification (go build + go test)
#   make race    race-detector pass over the concurrent serving path
#   make check   full gate: fmt + vet + build + tests + race (run before merging)

GO ?= go

.PHONY: build test race vet fmt check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The serving path shares one pipeline across handler goroutines and the
# registry hot-swaps it under live traffic; keep both provably race-clean.
race:
	$(GO) test -race ./internal/serve/... ./internal/obs/... ./internal/registry/... ./cmd/tasqd/...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; fi

check: fmt vet test race
	@echo "check: ok"
