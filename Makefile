# Development targets for the TASQ reproduction.
#
#   make build     compile everything
#   make test      tier-1 verification (go build + go test)
#   make race      race-detector pass over the concurrent paths
#   make check     full gate: fmt + vet + build + tests + race (run before merging)
#   make coverage  coverage profile with the fail-below-baseline floor
#   make chaos     deterministic chaos/soak harness under the race detector
#   make autopilot-soak  continuous-learning loop under drift + faults (-race)
#   make cluster-soak    sharded-fleet chaos suite: kill/partition/restart (-race)
#   make plan-soak       cluster planner at scale: ~1M simulated jobs, savings + reproducibility
#   make bench     benchmarks -> BENCH_pipeline.json + BENCH_serving.json + BENCH_planner.json

GO ?= go

.PHONY: build test race vet fmt check coverage chaos autopilot-soak cluster-soak plan-soak bench bench-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The serving path shares one pipeline across handler goroutines and the
# registry hot-swaps it under live traffic; the offline pipeline fans out
# ingest/augmentation/training/experiments across a worker pool. Keep all
# of it provably race-clean (mirrors scripts/check.sh).
race:
	$(GO) test -race ./internal/serve/... ./internal/obs/... ./internal/registry/... ./internal/model/... ./internal/faults/... ./internal/autopilot/... ./internal/drift/... ./internal/cluster/... ./internal/plan/... ./cmd/tasqd/...
	$(GO) test -race ./internal/parallel/... ./internal/flight/... ./internal/trainer/... ./internal/experiments/...

# Seeded fault-injection chaos/soak runs over the serving stack (three
# fixed seeds plus a same-seed reproducibility check); -short keeps the
# storm within the CI budget while exercising every phase.
chaos:
	$(GO) test -race -short -run 'TestChaos' -count=1 ./internal/harness/...

# Continuous-learning loop soak: seeded drift phases + registry read
# faults through the full autopilot stack (telemetry HTTP in, reloader
# syncs out), with convergence and quarantine invariants enforced.
# -short stops after the first auto-promotion for the CI budget; the full
# cycle (rollback + recovery + same-seed reproducibility) runs without
# the race detector in `make test` and with it via
# `go test -race -run 'TestAutopilotSoak' ./internal/harness/`.
autopilot-soak:
	$(GO) test -race -short -run 'TestAutopilotSoak' -count=1 ./internal/harness/...

# Sharded-fleet chaos suite: three fixed seeds of kill/partition/restart
# storms over a 3-replica fleet plus a same-seed reproducibility run,
# asserting no lost scores, exact cross-member counter reconciliation,
# minimal key movement, and a mid-storm rolling promotion wave. -short
# trims the step count for the CI budget.
cluster-soak:
	$(GO) test -race -short -run 'TestFleet(Chaos|Reproducibility)' -count=1 ./internal/harness/...

# Planner soak: seeded batches through the shared allocation core and the
# serving planner, asserting cluster-level token savings vs. the Peak and
# AutoToken baselines plus event-for-event same-seed reproducibility.
# -short plans 60 batches for the CI budget; the full run (no -short)
# pushes one million simulated jobs: 1,000 plans x 1,000 jobs x 3 lanes.
plan-soak:
	$(GO) test -race -short -run 'TestPlanSoak' -count=1 ./internal/harness/...

coverage:
	scripts/coverage.sh

bench:
	scripts/bench.sh

# One iteration of every serving benchmark: catches bit-rot in the bench
# harness itself without paying for real measurement (the pipeline benches
# train full models and stay out of the per-merge gate).
bench-smoke:
	$(GO) test -run='^$$' -bench='^Benchmark(Score|Batch)' -benchtime=1x -count=1 ./internal/serve/ ./internal/cluster/
	$(GO) test -run='^$$' -bench='^BenchmarkPlan' -benchtime=1x -count=1 ./internal/plan/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; fi

check: fmt vet test race chaos autopilot-soak cluster-soak plan-soak bench-smoke
	@echo "check: ok"
