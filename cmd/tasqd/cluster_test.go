package main

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"tasq/internal/serve"
)

func TestClusterFlagValidation(t *testing.T) {
	// -peers without -cluster-id: the member would have no ring key.
	err := run(context.Background(), []string{
		"-model", trainModel(t),
		"-peers", "http://other:8080",
		"-addr", "127.0.0.1:0",
	})
	if err == nil {
		t.Fatal("-peers without -cluster-id accepted")
	}
}

// TestClusterIdentityEndpoint boots a daemon in cluster mode and reads
// its fleet identity back through GET /v1/cluster.
func TestClusterIdentityEndpoint(t *testing.T) {
	modelPath := trainModel(t)

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-model", modelPath,
			"-addr", "127.0.0.1:0",
			"-cluster-id", "r1",
			"-peers", "http://r0:8080, http://r2:8080,",
			"-drain", "5s",
			"-quiet",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	client := serve.NewClient("http://" + addr.String())
	st, err := client.Cluster()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if st.ID != "r1" {
		t.Fatalf("member ID %q, want r1", st.ID)
	}
	// Whitespace and the trailing comma in -peers are tolerated.
	if got := fmt.Sprint(st.Peers); got != "[http://r0:8080 http://r2:8080]" {
		t.Fatalf("peers %s", got)
	}
	if !st.Ready || st.ActiveVersion != 0 {
		t.Fatalf("status %+v, want ready unversioned model", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}
