package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tasq/internal/autopilot"
	"tasq/internal/jobrepo"
	"tasq/internal/model"
	"tasq/internal/registry"
	"tasq/internal/scopesim"
	"tasq/internal/serve"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

func TestRunMissingModel(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.gob")
	if err := run(context.Background(), []string{"-model", missing, "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	path := trainModel(t)
	if err := run(context.Background(), []string{"-model", path, "-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// trainModel persists a small trained pipeline and returns its path plus a
// scorable job via the second return.
func trainModel(t *testing.T) string {
	t.Helper()
	path, _ := trainModelWithJob(t)
	return path
}

func trainModelWithJob(t *testing.T) (string, *scopesim.Job) {
	t.Helper()
	g := workload.New(workload.TestConfig(7))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(40), &ex); err != nil {
		t.Fatal(err)
	}
	cfg := trainer.DefaultConfig(7)
	cfg.XGB.NumTrees = 10
	cfg.NN.Epochs = 10
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := trainer.SavePipelineFile(p, path); err != nil {
		t.Fatal(err)
	}
	return path, repo.All()[0].Job
}

// TestGracefulShutdownOnSIGTERM exercises the full drain choreography
// against a live tasqd: an in-flight request is held open, SIGTERM
// arrives, /readyz flips to draining while the listener is still up
// (readiness grace), the in-flight request completes with a 200, and run
// returns cleanly within the drain deadline.
func TestGracefulShutdownOnSIGTERM(t *testing.T) {
	modelPath, job := trainModelWithJob(t)

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-model", modelPath,
			"-addr", "127.0.0.1:0",
			"-grace", "2s",
			"-drain", "10s",
			"-quiet",
		})
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	baseURL := "http://" + addr.String()
	client := serve.NewClient(baseURL)
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	if err := client.Ready(); err != nil {
		t.Fatalf("fresh daemon not ready: %v", err)
	}

	// Hold a scoring request in flight: send the headers and half the
	// body, so the handler blocks reading the rest.
	payload, err := json.Marshal(&serve.ScoreRequest{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	half := len(payload) / 2
	fmt.Fprintf(conn, "POST /v1/score HTTP/1.1\r\nHost: tasqd\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(payload))
	if _, err := conn.Write(payload[:half]); err != nil {
		t.Fatal(err)
	}
	// Wait until the admission gate has actually admitted the held-open
	// request: the drain contract finishes admitted work but refuses
	// anything still outside the gate, so firing SIGTERM earlier would
	// legitimately shed this request with 503.
	admitted := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		m, err := client.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(m, "tasq_admission_in_flight 1\n") {
			admitted = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !admitted {
		t.Fatal("held-open request never entered the admission gate")
	}

	// SIGTERM: the daemon must flip /readyz to draining and keep the
	// listener open for the grace period.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	draining := false
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		err := client.Ready()
		if se, ok := err.(*serve.StatusError); ok && se.Code == http.StatusServiceUnavailable {
			draining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !draining {
		t.Fatal("/readyz never reported draining after SIGTERM")
	}

	// Complete the in-flight request; it must still be answered.
	if _, err := conn.Write(payload[half:]); err != nil {
		t.Fatalf("writing body tail during drain: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading in-flight response during drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", resp.StatusCode)
	}
	var scored serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&scored); err != nil {
		t.Fatal(err)
	}
	if scored.Model == "" || len(scored.Predictions) == 0 {
		t.Fatalf("in-flight response incomplete: %+v", scored)
	}

	// The daemon exits cleanly within the drain deadline.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain deadline")
	}
}

// TestRegistryModeHotReload boots tasqd against a model registry with a
// deliberately long poll interval, then proves both out-of-band reload
// paths: publish v2 → POST /v1/admin/reload swaps the active model, and
// publish v3 → SIGHUP swaps again — all without restarting the daemon,
// observed through the /metrics version gauge and response versions.
func TestRegistryModeHotReload(t *testing.T) {
	g := workload.New(workload.TestConfig(11))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(40), &ex); err != nil {
		t.Fatal(err)
	}
	cfg := trainer.DefaultConfig(11)
	cfg.XGB.NumTrees = 10
	cfg.SkipNN = true
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := repo.All()[0].Job

	store := filepath.Join(t.TempDir(), "models")
	reg, err := registry.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.PublishPipeline(p, registry.Manifest{Notes: "v1"}); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-registry", store,
			"-poll", "1h", // only SIGHUP/admin may trigger the swaps below
			"-addr", "127.0.0.1:0",
			"-quiet",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	client := serve.NewClient("http://" + addr.String())

	resp, err := client.Score(&serve.ScoreRequest{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != 1 {
		t.Fatalf("initial model version %d, want 1", resp.ModelVersion)
	}

	// Publish v2 and reload through the admin endpoint.
	if _, err := reg.PublishPipeline(p, registry.Manifest{Notes: "v2"}); err != nil {
		t.Fatal(err)
	}
	out, err := client.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if out.ActiveVersion != 2 {
		t.Fatalf("admin reload landed on v%d, want v2", out.ActiveVersion)
	}

	// Publish v3 and reload via SIGHUP.
	if _, err := reg.PublishPipeline(p, registry.Manifest{Notes: "v3"}); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	swapped := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m, err := client.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(m, `tasq_model_version{role="active"} 3`+"\n") {
			swapped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !swapped {
		t.Fatal("SIGHUP never swapped the active model to v3")
	}
	resp, err = client.Score(&serve.ScoreRequest{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != 3 {
		t.Fatalf("post-SIGHUP model version %d, want 3", resp.ModelVersion)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after context cancel")
	}
}

// TestRegistryModeEmptyRegistryRefusesToStart pins the fail-fast
// contract: with no published versions, the daemon exits with an error
// instead of serving 503s forever.
func TestRegistryModeEmptyRegistryRefusesToStart(t *testing.T) {
	store := filepath.Join(t.TempDir(), "models")
	if err := run(context.Background(), []string{"-registry", store, "-addr", "127.0.0.1:0", "-quiet"}); err == nil {
		t.Fatal("empty registry accepted")
	}
}

// TestServesBatchAndMetrics verifies the daemon wires up the full route
// set, not just single scoring.
func TestServesBatchAndMetrics(t *testing.T) {
	modelPath, job := trainModelWithJob(t)

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", modelPath, "-addr", "127.0.0.1:0", "-quiet", "-workers", "2"})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	client := serve.NewClient("http://" + addr.String())

	batch, err := client.ScoreBatch(&serve.BatchScoreRequest{Items: []serve.ScoreRequest{
		{Job: job}, {},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Succeeded != 1 || batch.Failed != 1 {
		t.Fatalf("batch outcome %+v", batch)
	}
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `tasq_http_requests_total{code="2xx",route="/v1/score/batch"} 1`) {
		t.Fatalf("batch request not counted:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after context cancel")
	}
}

// bootDaemon starts tasqd with the given extra flags over a trained model
// file and returns a client plus a shutdown func that asserts a clean exit.
func bootDaemon(t *testing.T, job *scopesim.Job, extra ...string) (*serve.Client, *scopesim.Job, func()) {
	t.Helper()
	modelPath, j := trainModelWithJob(t)
	if job != nil {
		j = job
	}
	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	args := append([]string{"-model", modelPath, "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	go func() { done <- run(ctx, args) }()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	testOnListen = nil
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v, want nil", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("daemon did not exit after context cancel")
		}
	}
	return serve.NewClient("http://" + addr.String()), j, stop
}

// TestFaultProfileFlag boots tasqd with a rate-1 synthetic-error profile:
// every scoring request must fail with the injected 500 while probes and
// metrics stay healthy — and a malformed profile is rejected at startup.
func TestFaultProfileFlag(t *testing.T) {
	modelPath := trainModel(t)
	if err := run(context.Background(), []string{
		"-model", modelPath, "-addr", "127.0.0.1:0", "-quiet",
		"-fault-profile", "error=2.0",
	}); err == nil {
		t.Fatal("out-of-range fault profile accepted")
	}

	client, job, stop := bootDaemon(t, nil, "-fault-profile", "seed=3,error=1.0")
	defer stop()

	for i := 0; i < 3; i++ {
		_, err := client.Score(&serve.ScoreRequest{Job: job})
		se, ok := err.(*serve.StatusError)
		if !ok || se.Code != http.StatusInternalServerError {
			t.Fatalf("score %d under rate-1 error profile: %v, want injected 500", i, err)
		}
		if !strings.Contains(se.Message, "injected") {
			t.Fatalf("score %d error does not identify the injection: %s", i, se.Message)
		}
	}
	if err := client.Health(); err != nil {
		t.Fatalf("health under fault profile: %v", err)
	}
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `tasq_score_jobs_total{outcome="failed"} 3`) {
		t.Fatalf("injected failures not counted:\n%s", metrics)
	}
}

// TestAdmissionFlags boots tasqd with a single scoring slot, no queue and
// rate-1 injected latency, then fires concurrent scores: the slot holder
// succeeds (slowly) and the overflow is shed with 429 + Retry-After.
func TestAdmissionFlags(t *testing.T) {
	client, job, stop := bootDaemon(t, nil,
		"-max-inflight", "1", "-max-queue", "0",
		"-fault-profile", "seed=5,latency=1.0:300ms",
	)
	defer stop()

	const n = 4
	type outcome struct {
		err error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := client.Score(&serve.ScoreRequest{Job: job})
			results <- outcome{err: err}
		}()
	}
	oks, sheds := 0, 0
	for i := 0; i < n; i++ {
		res := <-results
		switch se, ok := res.err.(*serve.StatusError); {
		case res.err == nil:
			oks++
		case ok && se.Code == http.StatusTooManyRequests:
			sheds++
			if se.RetryAfter <= 0 {
				t.Fatalf("429 shed without Retry-After: %v", se)
			}
		default:
			t.Fatalf("unexpected outcome under saturation: %v", res.err)
		}
	}
	if oks == 0 || sheds == 0 {
		t.Fatalf("saturation split %d ok / %d shed, want both nonzero", oks, sheds)
	}
}

// TestPolicyFlagAndModelsEndpoint boots tasqd with a -policy override and
// checks the whole routing surface end to end: policy-routed scores, a
// per-request model override, the /v1/models listing, and a startup
// rejection for a policy that names an unknown predictor.
func TestPolicyFlagAndModelsEndpoint(t *testing.T) {
	modelPath, job := trainModelWithJob(t)

	// A policy with a typo'd predictor name must fail before listening.
	if err := run(context.Background(), []string{
		"-model", modelPath, "-addr", "127.0.0.1:0", "-policy", "resnet", "-quiet",
	}); err == nil {
		t.Fatal("bogus -policy accepted")
	}

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-model", modelPath, "-addr", "127.0.0.1:0",
			"-policy", "XGBoost-PL,NN", "-drain", "5s", "-quiet",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	client := serve.NewClient("http://" + addr.String())

	// Unnamed requests follow the -policy chain, not the built-in order.
	resp, err := client.Score(&serve.ScoreRequest{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != model.NameXGBPL {
		t.Fatalf("policy-routed score served by %s, want %s", resp.Model, model.NameXGBPL)
	}
	// A request naming a model overrides the policy.
	resp, err = client.Score(&serve.ScoreRequest{Job: job, Model: "jockey"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != model.NameJockey {
		t.Fatalf("named score served by %s, want %s", resp.Model, model.NameJockey)
	}
	// The daemon lists its predictor set.
	models, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 7 {
		t.Fatalf("models listing %+v, want 7 predictors", models.Models)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// TestAutopilotFlagRequiresRegistry pins the startup contract: the
// learning loop cannot run without a registry to retrain into.
func TestAutopilotFlagRequiresRegistry(t *testing.T) {
	modelPath := trainModel(t)
	err := run(context.Background(), []string{
		"-model", modelPath, "-autopilot", "-addr", "127.0.0.1:0", "-quiet",
	})
	if err == nil || !strings.Contains(err.Error(), "-registry") {
		t.Fatalf("-autopilot without -registry: %v, want a registry error", err)
	}
}

// TestAutopilotModeWiring boots tasqd with -autopilot over a registry and
// proves the loop is live: POST /v1/telemetry is accepted, the observed
// runs reach the drift detector (visible on /metrics), the window store
// persists them under <registry>/telemetry/, and the active version gets
// auto-pinned (the pin-before-candidate invariant).
func TestAutopilotModeWiring(t *testing.T) {
	g := workload.New(workload.TestConfig(19))
	repo := jobrepo.New()
	var ex scopesim.Executor
	if err := repo.Ingest(g.Workload(40), &ex); err != nil {
		t.Fatal(err)
	}
	cfg := trainer.DefaultConfig(19)
	cfg.XGB.NumTrees = 10
	cfg.SkipNN = true
	cfg.SkipGNN = true
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(t.TempDir(), "models")
	reg, err := registry.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.PublishPipeline(p, registry.Manifest{Notes: "v1"}); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrCh <- a }
	defer func() { testOnListen = nil }()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-registry", store,
			"-autopilot",
			"-drift-threshold", "0.4",
			"-promote-min-n", "8",
			"-guardrail-window", "16",
			"-poll", "1h",
			"-addr", "127.0.0.1:0",
			"-quiet",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for listener")
	}
	client := serve.NewClient("http://" + addr.String())

	out, err := client.Telemetry(&serve.TelemetryRequest{Records: repo.All()[:10]})
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 10 || out.Rejected != 0 {
		t.Fatalf("telemetry outcome %+v, want 10 accepted", out)
	}
	// The ingest queue drains asynchronously: wait for the drift detector
	// to fold all 10 samples.
	folded := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		m, err := client.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(m, "tasq_drift_samples_total 10") {
			folded = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !folded {
		t.Fatal("telemetry never reached the drift detector")
	}
	// The loop pinned the generation it serves, and the window persisted.
	if pinned, err := reg.Pinned(); err != nil || pinned != 1 {
		t.Fatalf("pinned v%d (%v), want v1 auto-pinned", pinned, err)
	}
	winReg, err := registry.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if vs, err := winReg.Versions(); err != nil || len(vs) != 1 {
		t.Fatalf("telemetry dir leaked into registry versions: %v (%v)", vs, err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after context cancel")
	}
	// The window store survived the daemon: a fresh open sees the records.
	win, err := autopilot.OpenWindow(filepath.Join(store, "telemetry", "window.jsonl"), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	if win.Len() != 10 {
		t.Fatalf("persisted window holds %d records, want 10", win.Len())
	}
}

// TestServesPlan boots tasqd over a trained model and plans a small batch
// through POST /v1/plan, with -max-plan-jobs enforcing the request cap.
func TestServesPlan(t *testing.T) {
	client, job, stop := bootDaemon(t, nil, "-max-plan-jobs", "2")
	defer stop()

	resp, err := client.Plan(&serve.PlanRequest{
		Jobs:           []*scopesim.Job{job, job},
		CapacityTokens: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 2 || resp.Policy != "Optimal Allocation" {
		t.Fatalf("plan response %+v", resp)
	}
	for i, pj := range resp.Jobs {
		if pj.Tokens < 1 || pj.Tokens > 200 || pj.PredictedRuntimeSeconds < 1 {
			t.Fatalf("planned job %d: %+v", i, pj)
		}
	}

	// The third job breaches -max-plan-jobs 2 → 400.
	_, err = client.Plan(&serve.PlanRequest{
		Jobs:           []*scopesim.Job{job, job, job},
		CapacityTokens: 200,
	})
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("over-cap plan: %v, want 400", err)
	}
}
