package main

import (
	"path/filepath"
	"testing"
)

func TestRunMissingModel(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.gob")
	if err := run([]string{"-model", missing, "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
