// Command tasqd serves PCC predictions over HTTP — the deployed model
// endpoint of the paper's Figure 4 system integration. It loads a pipeline
// trained and persisted with "tasq train" and exposes:
//
//	GET  /healthz   liveness probe
//	POST /v1/score  job scoring (see internal/serve for the schema)
//
// Usage:
//
//	tasqd -model model.gob -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"tasq/internal/serve"
	"tasq/internal/trainer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tasqd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tasqd", flag.ContinueOnError)
	model := fs.String("model", "model.gob", "trained model path (from 'tasq train')")
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := trainer.LoadPipelineFile(*model)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(p)
	if err != nil {
		return err
	}
	log.Printf("tasqd: serving model %s on %s", *model, *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
