// Command tasqd serves PCC predictions over HTTP — the deployed model
// endpoint of the paper's Figure 4 system integration. It serves a
// pipeline trained with "tasq train", either from a plain model file
// (-model) or live from a versioned model registry (-registry), and
// exposes:
//
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe (503 while draining)
//	GET  /metrics          Prometheus text-format metrics
//	POST /v1/score         job scoring (see internal/serve for the schema)
//	POST /v1/score/batch   concurrent batch scoring
//	POST /v1/plan          cluster planning: allocate a job batch against a token pool
//	                       (fcfs, backfill or retry scheduling; tenant quotas; deadlines)
//	GET  /v1/models        the loaded pipeline's predictor set
//	GET  /v1/cluster       fleet identity and serving state (-cluster-id mode)
//	POST /v1/admin/reload  immediate registry sync (registry mode)
//	POST /v1/telemetry     observed-run feedback ingest (-autopilot mode)
//
// Requests may name any listed predictor (trained models or the §6
// baselines) in their `model` field; requests that name none follow the
// pipeline's fallback policy, overridable with -policy (applied to every
// hot-swapped generation in registry mode).
//
// Several tasqd replicas sharing one filesystem registry form a fleet:
// give each a -cluster-id (and optionally -peers, the other members'
// base URLs) and front them with the client-side consistent-hash
// balancer (internal/serve.ClusterClient), which keeps each shard's
// curve caches hot and fails over on member outages. GET /v1/cluster
// reports each member's identity, peers and serving versions.
//
// In registry mode the daemon never restarts to pick up a new model: it
// serves the pinned version (or the latest when nothing is pinned), polls
// the registry every -poll for new publishes, hot-swaps generations
// atomically under live traffic, and re-syncs on SIGHUP or an admin
// reload. When a version newer than the pin exists, a -shadow-sample
// fraction of live requests is mirrored through it and per-candidate
// divergence metrics are exported on /metrics, so promotion (repinning or
// unpinning) can be judged from real traffic.
//
// With -autopilot (registry mode only) the daemon closes the learning
// loop on its own: POST /v1/telemetry feeds observed runs into a
// crash-safe window store under <registry>/telemetry/, an online drift
// detector watches the active model's error EWMA (-drift-threshold), a
// drift alarm retrains over the window and publishes the result as a
// shadow candidate, and once the candidate beats the active model over
// -promote-min-n paired samples it is auto-pinned — with a guardrail
// watching the next -guardrail-window observations that rolls back to the
// previous generation exactly once on an error spike.
//
// Scoring endpoints sit behind a bounded admission gate (-max-inflight,
// -max-queue, -queue-wait): beyond the concurrency limit requests wait in
// a FIFO queue, and overflow or queue-deadline expiry is shed with 429 +
// Retry-After or 504 instead of queueing unboundedly.
//
// The daemon shuts down gracefully: on SIGINT/SIGTERM it flips /readyz to
// draining and the admission gate to refusing new scoring work (503),
// waits the readiness grace period so load balancers stop routing new
// work here, then closes the listener and lets in-flight requests finish
// within the drain deadline.
//
// For resilience testing only, -fault-profile injects deterministic
// faults (seeded; see internal/faults): scoring latency, synthetic 500s,
// per-batch-item failures, and slow or corrupt registry reads.
//
// Usage:
//
//	tasqd -model model.gob -addr :8080 -drain 15s
//	tasqd -registry models/ -poll 10s -shadow-sample 0.25 -addr :8080
//	tasqd -registry models/ -autopilot -drift-threshold 0.3 -promote-min-n 32 -addr :8080
//	tasqd -model model.gob -fault-profile 'seed=42,error=0.1,latency=0.2:5ms'  # dev chaos
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tasq/internal/autopilot"
	"tasq/internal/drift"
	"tasq/internal/faults"
	"tasq/internal/model"
	"tasq/internal/obs"
	"tasq/internal/registry"
	"tasq/internal/serve"
	"tasq/internal/trainer"
)

// testOnListen, when set, receives the bound listener address; tests use
// it to talk to a server started on port 0.
var testOnListen func(net.Addr)

// splitPeers parses the -peers list, dropping empty entries so trailing
// commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tasqd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tasqd", flag.ContinueOnError)
	modelPath := fs.String("model", "model.gob", "trained model path (from 'tasq train')")
	registryDir := fs.String("registry", "", "model registry directory; takes precedence over -model and enables hot reload")
	poll := fs.Duration("poll", serve.DefaultPollInterval, "registry poll interval")
	shadowSample := fs.Float64("shadow-sample", 1.0, "fraction of score requests mirrored to the shadow candidate (0 disables, 1 mirrors all)")
	addr := fs.String("addr", ":8080", "listen address")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
	grace := fs.Duration("grace", 0, "wait after flipping /readyz to draining before closing the listener")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to read a request (header + body)")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "max time to write a response")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	maxHeaderBytes := fs.Int("max-header-bytes", 1<<20, "request header size limit")
	workers := fs.Int("workers", 0, "batch-scoring worker pool size (0 = NumCPU)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently executing scoring requests (0 = default)")
	maxQueue := fs.Int("max-queue", -1, "max scoring requests queued behind the in-flight limit before shedding 429 (-1 = default)")
	curveCache := fs.Int("curve-cache", serve.DefaultCurveCacheCap, "memoized-curve cache capacity per model generation (<= 0 disables)")
	maxPlanJobs := fs.Int("max-plan-jobs", serve.DefaultMaxPlanJobs, "max jobs accepted per POST /v1/plan request")
	queueWait := fs.Duration("queue-wait", 0, "max time a scoring request may wait in the admission queue before shedding 504 (0 = default)")
	autopilotOn := fs.Bool("autopilot", false, "close the learning loop: ingest /v1/telemetry, detect drift, retrain, auto-promote with a rollback guardrail (requires -registry)")
	driftThreshold := fs.Float64("drift-threshold", drift.DefaultConfig().Threshold, "relative-error EWMA above which the drift alarm fires a retrain (autopilot mode)")
	promoteMinN := fs.Int("promote-min-n", autopilot.DefaultMachineConfig().PromoteMinN, "paired error samples required before a candidate may be auto-promoted (autopilot mode)")
	guardrailWindow := fs.Int("guardrail-window", autopilot.DefaultMachineConfig().GuardrailWindow, "post-promotion observations the rollback guardrail watches (autopilot mode)")
	telemetryCap := fs.Int("telemetry-window", autopilot.DefaultWindowCap, "retraining window capacity in records (autopilot mode)")
	trainSeed := fs.Int64("train-seed", 1, "deterministic seed for autopilot retrains")
	faultProfile := fs.String("fault-profile", "", "DEV ONLY: inject deterministic faults, e.g. 'seed=42,latency=0.2:5ms,error=0.1,batch-item=0.05,registry-slow=0.1:10ms,registry-corrupt=0.02'")
	policyFlag := fs.String("policy", "", "comma-separated predictor fallback chain for requests that name no model (e.g. 'GNN,NN'; empty = built-in NN,GNN,XGBoost-PL order)")
	clusterID := fs.String("cluster-id", "", "fleet member ID for cluster mode; enables GET /v1/cluster")
	peersFlag := fs.String("peers", "", "comma-separated base URLs of the other fleet members (requires -cluster-id)")
	quiet := fs.Bool("quiet", false, "disable structured request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *autopilotOn && *registryDir == "" {
		return errors.New("-autopilot requires -registry (the loop retrains into and promotes within a registry)")
	}
	peers := splitPeers(*peersFlag)
	if len(peers) > 0 && *clusterID == "" {
		return errors.New("-peers requires -cluster-id (a member must know its own ring key)")
	}
	policy := model.ParsePolicy(*policyFlag)
	opts := []serve.Option{serve.WithShadowSampleRate(*shadowSample)}
	if !*quiet {
		opts = append(opts, serve.WithLogger(obs.NewLogger(os.Stderr)))
	}
	if *workers > 0 {
		opts = append(opts, serve.WithWorkers(*workers))
	}
	opts = append(opts, serve.WithAdmission(*maxInFlight, *maxQueue, *queueWait))
	opts = append(opts, serve.WithCurveCache(*curveCache))
	opts = append(opts, serve.WithMaxPlanJobs(*maxPlanJobs))
	if *clusterID != "" {
		opts = append(opts, serve.WithClusterInfo(*clusterID, peers))
	}

	var inj *faults.Injector
	if *faultProfile != "" {
		seed, profile, err := faults.ParseProfile(*faultProfile)
		if err != nil {
			return err
		}
		if !profile.Zero() {
			inj = faults.New(seed, profile)
			opts = append(opts, serve.WithFaultInjector(inj))
			log.Printf("tasqd: WARNING: fault injection enabled (seed=%d, profile %+v) — requests WILL fail on purpose; never use -fault-profile in production", seed, profile)
		}
	}

	var srv *serve.Server
	var source string
	if *registryDir != "" {
		// Registry mode: sync the pinned/latest version before the
		// listener opens, then hot-reload from the poller, SIGHUP and
		// the admin endpoint.
		reg, err := registry.Open(*registryDir)
		if err != nil {
			return err
		}
		if inj != nil {
			// The dev fault profile also exercises the reload path: slow
			// and corrupt artifact reads on every registry sync.
			reg.SetReadHook(inj.RegistryRead)
		}
		var ap *autopilot.Autopilot
		if *autopilotOn {
			// The window store lives beside the versions it feeds; the
			// registry ignores non-v* entries, so it is GC-safe there.
			win, err := autopilot.OpenWindow(
				filepath.Join(*registryDir, "telemetry", "window.jsonl"), *telemetryCap)
			if err != nil {
				return err
			}
			defer win.Close()
			apCfg := autopilot.DefaultConfig(*trainSeed)
			apCfg.Drift.Threshold = *driftThreshold
			apCfg.Machine.PromoteMinN = *promoteMinN
			apCfg.Machine.GuardrailWindow = *guardrailWindow
			if !*quiet {
				apCfg.Logf = log.Printf
			}
			ap = autopilot.New(reg, win, apCfg)
			opts = append(opts, serve.WithTelemetry(ap))
		}
		srv, err = serve.NewUnloadedServer(opts...)
		if err != nil {
			return err
		}
		reloader := serve.NewReloader(reg, srv, *poll, log.Printf)
		if len(policy) > 0 {
			// Every hot-swapped generation scores with the same override.
			reloader.OnLoad(func(p *trainer.Pipeline) { p.ScorePolicy = policy })
		}
		if err := reloader.Sync(); err != nil {
			return fmt.Errorf("initial registry sync: %w", err)
		}
		if ap != nil {
			// Loop decisions (candidate publish, promotion pin, rollback)
			// surface in the serving layer immediately, not at the next poll.
			ap.SyncFn = reloader.Sync
			ap.BindMetrics(srv.Registry())
			ap.Start(ctx)
		}
		go reloader.Run(ctx)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if err := reloader.Sync(); err != nil {
						log.Printf("tasqd: SIGHUP reload: %v", err)
					} else {
						log.Printf("tasqd: SIGHUP reload: active v%d, shadow v%d",
							srv.ActiveVersion(), srv.ShadowVersion())
					}
				}
			}
		}()
		source = fmt.Sprintf("registry %s (v%d)", *registryDir, srv.ActiveVersion())
		if ap != nil {
			source += " with autopilot"
		}
	} else {
		p, err := trainer.LoadPipelineFile(*modelPath)
		if err != nil {
			return err
		}
		if len(policy) > 0 {
			// Reject typo'd chains at startup, not per request.
			for _, name := range policy {
				if _, err := p.Predictors().Get(name); err != nil {
					return fmt.Errorf("-policy: %w", err)
				}
			}
			p.ScorePolicy = policy
		}
		srv, err = serve.NewServer(p, opts...)
		if err != nil {
			return err
		}
		source = "model " + *modelPath
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if testOnListen != nil {
		testOnListen(ln.Addr())
	}
	log.Printf("tasqd: serving %s on %s", source, ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve never returns nil; without a shutdown this is a real
		// listener failure.
		return err
	case <-ctx.Done():
	}

	// Drain: flip readiness and the admission gate first so orchestrators
	// stop sending traffic and new scoring work is refused with 503 while
	// queued requests finish, give load balancers the grace period to
	// notice, then close the listener and wait for in-flight requests up
	// to the drain deadline.
	log.Printf("tasqd: draining (grace %s, deadline %s)", *grace, *drain)
	srv.BeginDrain()
	if *grace > 0 {
		time.Sleep(*grace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// Deadline exceeded: hard-close whatever is left.
		httpSrv.Close()
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("tasqd: drained, bye")
	return nil
}
