// Command experiments regenerates every table and figure of the TASQ
// paper's evaluation on the synthetic substrate (see DESIGN.md's
// per-experiment index) and prints the report, optionally writing it to a
// file for EXPERIMENTS.md.
//
// Usage:
//
//	experiments -size small|full -seed 7 [-out report.txt] [-only "Table 3"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tasq/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	size := fs.String("size", "small", "suite size: small or full")
	seed := fs.Int64("seed", 7, "random seed")
	out := fs.String("out", "", "also write the report to this file")
	only := fs.String("only", "", "run only experiments whose ID contains this substring")
	workers := fs.Int("workers", 0, "worker goroutines for suite build and experiments (0 = all CPUs, 1 = serial; results are identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg experiments.SuiteConfig
	switch *size {
	case "small":
		cfg = experiments.SmallConfig(*seed)
	case "full":
		cfg = experiments.FullConfig(*seed)
	default:
		return fmt.Errorf("unknown size %q (want small or full)", *size)
	}
	cfg.Workers = *workers

	fmt.Fprintf(os.Stderr, "building suite (%d train / %d test jobs)...\n", cfg.TrainJobs, cfg.TestJobs)
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "suite ready in %s (%d flighted jobs, %d runs)\n",
		suite.BuildDuration.Round(1e7), len(suite.Flights.Jobs), suite.Flights.TotalRuns)

	entries := experiments.RunAll(suite)
	if *only != "" {
		var filtered []experiments.ReportEntry
		for _, e := range entries {
			if strings.Contains(strings.ToLower(e.ID), strings.ToLower(*only)) {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}
	report := experiments.RenderReport(entries)
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
	for _, e := range entries {
		if e.Err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, e.Err)
		}
	}
	return nil
}
