package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadSize(t *testing.T) {
	if err := run([]string{"-size", "gigantic"}); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestRunSingleExperimentToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a suite")
	}
	out := filepath.Join(t.TempDir(), "report.txt")
	// -only narrows to the cheap Figures 6/7 so the test stays fast after
	// the (unavoidable) suite build.
	if err := run([]string{"-size", "small", "-seed", "3", "-only", "Figures 6/7", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "AREPAS section behaviour") {
		t.Fatalf("report content unexpected: %q", string(data))
	}
}
