// Command tasq is the command-line entry point to the TASQ reproduction:
// it generates synthetic SCOPE-like workloads, trains and persists the
// model pipeline, evaluates it, runs AREPAS what-if simulations, performs
// the §5.1 job selection, and scores jobs for optimal token allocations.
//
// Usage:
//
//	tasq generate -n 1000 -seed 1 -out repo.jsonl [-scale 1.0]
//	tasq stats    -data repo.jsonl
//	tasq train    -data repo.jsonl -out model.gob [-loss LF2] [-skip-gnn]
//	              [-registry models/ -eval-data test.jsonl -notes "..."]
//	tasq evaluate -data test.jsonl -model model.gob
//	tasq simulate -data repo.jsonl -job <id> -tokens 40
//	tasq select   -data repo.jsonl -k 8 -sample 200 -seed 1
//	tasq flight   -data repo.jsonl -k 8 -sample 100 -seed 1
//	tasq score    -data repo.jsonl -model model.gob -job <id> [-threshold 0.01]
//	              [-predictor NN] [-policy GNN,NN]
//	tasq plan     -data repo.jsonl -model model.gob -capacity 400 [-n 100]
//	              [-alloc optimal] [-threshold 0.01] [-predictor NN] [-addr http://host:8080]
//	tasq registry <list|show|pin|unpin|gc> -dir models/ [-version N] [-keep N]
//
// With -registry, train publishes the model into the versioned model
// store that tasqd serves from (and hot-reloads); the registry
// subcommand manages the store's lifecycle: inspect manifests, pin the
// serving version while candidates shadow-score, and prune old versions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"tasq/internal/arepas"
	"tasq/internal/flight"
	"tasq/internal/jobrepo"
	"tasq/internal/model"
	"tasq/internal/plan"
	"tasq/internal/registry"
	"tasq/internal/scopesim"
	"tasq/internal/selection"
	"tasq/internal/serve"
	"tasq/internal/stats"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tasq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "train":
		return cmdTrain(args[1:])
	case "evaluate":
		return cmdEvaluate(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "select":
		return cmdSelect(args[1:])
	case "flight":
		return cmdFlight(args[1:])
	case "score":
		return cmdScore(args[1:])
	case "plan":
		return cmdPlan(args[1:])
	case "registry":
		return cmdRegistry(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tasq <generate|stats|train|evaluate|simulate|select|flight|score|plan|registry> [flags]
run "tasq <subcommand> -h" for flags`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of jobs")
	seed := fs.Int64("seed", 1, "random seed")
	scale := fs.Float64("scale", 1.0, "workload size scale")
	out := fs.String("out", "repo.jsonl", "output JSONL path")
	workers := fs.Int("workers", 0, "worker goroutines for job execution (0 = all CPUs, 1 = serial; output is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := workload.DefaultConfig(*seed)
	cfg.SizeScale = *scale
	gen := workload.New(cfg)
	jobs := gen.Workload(*n)
	for i, j := range jobs {
		j.Anonymize(i)
	}
	repo := jobrepo.New()
	if err := repo.IngestParallel(jobs, &scopesim.Executor{}, *workers); err != nil {
		return err
	}
	if err := repo.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("generated %d jobs -> %s\n", repo.Len(), *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	var rts, toks, peaks []float64
	var recurring int
	for _, rec := range repo.All() {
		rts = append(rts, float64(rec.RuntimeSeconds))
		toks = append(toks, float64(rec.ObservedTokens))
		peaks = append(peaks, float64(rec.Skyline.Peak()))
		if rec.Job.Template != "" {
			recurring++
		}
	}
	fmt.Printf("jobs: %d (%d recurring, %d ad-hoc)\n", repo.Len(), recurring, repo.Len()-recurring)
	fmt.Printf("run time (s): min %.0f median %.0f mean %.0f max %.0f\n",
		stats.Min(rts), stats.Median(rts), stats.Mean(rts), stats.Max(rts))
	fmt.Printf("requested tokens: median %.0f mean %.0f\n", stats.Median(toks), stats.Mean(toks))
	fmt.Printf("peak tokens used: min %.0f median %.0f mean %.0f max %.0f\n",
		stats.Min(peaks), stats.Median(peaks), stats.Mean(peaks), stats.Max(peaks))
	return nil
}

func parseLoss(s string) (trainer.LossKind, error) {
	switch s {
	case "LF1", "lf1":
		return trainer.LF1, nil
	case "LF2", "lf2", "":
		return trainer.LF2, nil
	case "LF3", "lf3":
		return trainer.LF3, nil
	default:
		return 0, fmt.Errorf("unknown loss %q (want LF1, LF2 or LF3)", s)
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "training repository JSONL")
	out := fs.String("out", "model.gob", "output model path")
	seed := fs.Int64("seed", 1, "random seed")
	lossName := fs.String("loss", "LF2", "NN/GNN loss: LF1, LF2 or LF3")
	skipGNN := fs.Bool("skip-gnn", false, "skip the (slow) GNN")
	nnEpochs := fs.Int("nn-epochs", 0, "override NN epochs")
	gnnEpochs := fs.Int("gnn-epochs", 0, "override GNN epochs")
	registryDir := fs.String("registry", "", "also publish the model into this registry directory")
	evalData := fs.String("eval-data", "", "held-out JSONL evaluated into the published manifest (requires -registry)")
	notes := fs.String("notes", "", "free-form note recorded in the published manifest")
	workers := fs.Int("workers", 0, "worker goroutines for target building and augmentation (0 = all CPUs, 1 = serial; the trained model is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registryDir == "" && (*evalData != "" || *notes != "") {
		return fmt.Errorf("-eval-data and -notes only apply when publishing with -registry")
	}
	loss, err := parseLoss(*lossName)
	if err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	cfg := trainer.DefaultConfig(*seed)
	cfg.NN.Loss = loss
	cfg.GNN.Loss = loss
	cfg.SkipGNN = *skipGNN
	cfg.Workers = *workers
	if *nnEpochs > 0 {
		cfg.NN.Epochs = *nnEpochs
	}
	if *gnnEpochs > 0 {
		cfg.GNN.Epochs = *gnnEpochs
	}
	p, err := trainer.Train(repo.All(), cfg)
	if err != nil {
		return err
	}
	if err := trainer.SavePipelineFile(p, *out); err != nil {
		return err
	}
	fmt.Printf("trained on %d jobs (loss %s) -> %s\n", repo.Len(), loss, *out)
	if p.NN != nil {
		fmt.Printf("NN parameters: %d\n", p.NN.NumParams())
	}
	if p.GNN != nil {
		fmt.Printf("GNN parameters: %d\n", p.GNN.NumParams())
	}
	if *registryDir != "" {
		version, err := publishTrained(p, cfg, repo.Len(), *registryDir, *evalData, *notes)
		if err != nil {
			return err
		}
		fmt.Printf("published v%d -> %s\n", version, *registryDir)
	}
	return nil
}

// publishTrained pushes a trained pipeline into the model registry, with
// an optional held-out evaluation folded into the manifest so promotion
// can be judged without reloading the model.
func publishTrained(p *trainer.Pipeline, cfg trainer.Config, jobs int, dir, evalData, notes string) (int, error) {
	reg, err := registry.Open(dir)
	if err != nil {
		return 0, err
	}
	m := registry.Manifest{
		Train: registry.SummarizeTraining(cfg, jobs),
		Notes: notes,
	}
	if evalData != "" {
		test, err := jobrepo.LoadFile(evalData)
		if err != nil {
			return 0, err
		}
		evals, err := p.EvaluateHistorical(test.All())
		if err != nil {
			return 0, err
		}
		m.EvalMetrics = make(map[string]float64, len(evals))
		for _, e := range evals {
			m.EvalMetrics["runtime_median_ae_"+metricKey(e.Model)] = e.RuntimeMedianAE
		}
	}
	return reg.PublishPipeline(p, m)
}

// metricKey flattens a model name ("XGBoost SS") into a metric-safe
// suffix ("xgboost_ss").
func metricKey(model string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, model)
}

// cmdRegistry manages the model store: list and show manifests, pin the
// serving version, and prune old versions.
func cmdRegistry(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tasq registry <list|show|pin|unpin|gc> [flags]")
	}
	action := args[0]
	fs := flag.NewFlagSet("registry "+action, flag.ContinueOnError)
	dir := fs.String("dir", "models", "registry directory")
	version := fs.Int("version", 0, "target version (show, pin)")
	keep := fs.Int("keep", 5, "versions to retain (gc)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	reg, err := registry.Open(*dir)
	if err != nil {
		return err
	}
	switch action {
	case "list":
		ms, err := reg.List()
		if err != nil {
			return err
		}
		pinned, err := reg.Pinned()
		if err != nil {
			return err
		}
		if len(ms) == 0 {
			fmt.Println("registry is empty")
			return nil
		}
		fmt.Printf("%-8s %-20s %-10s %-6s %-8s %s\n", "VERSION", "CREATED", "SIZE", "LOSS", "JOBS", "NOTES")
		for _, m := range ms {
			marker := ""
			if m.Version == pinned {
				marker = " (pinned)"
			}
			fmt.Printf("v%04d%-3s %-20s %-10d %-6s %-8d %s\n",
				m.Version, marker, m.CreatedAt.Format("2006-01-02 15:04:05"),
				m.SizeBytes, m.Train.Loss, m.Train.Jobs, m.Notes)
		}
		return nil
	case "show":
		if *version == 0 {
			v, err := reg.Latest()
			if err != nil {
				return err
			}
			*version = v
		}
		m, err := reg.Manifest(*version)
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	case "pin":
		if *version == 0 {
			return fmt.Errorf("pin requires -version")
		}
		if err := reg.Pin(*version); err != nil {
			return err
		}
		fmt.Printf("pinned v%d\n", *version)
		return nil
	case "unpin":
		if err := reg.Unpin(); err != nil {
			return err
		}
		fmt.Println("unpinned")
		return nil
	case "gc":
		removed, err := reg.GC(*keep)
		if err != nil {
			return err
		}
		fmt.Printf("removed %d version(s) %v, kept %d\n", len(removed), removed, *keep)
		return nil
	default:
		return fmt.Errorf("unknown registry action %q (want list, show, pin, unpin or gc)", action)
	}
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	data := fs.String("data", "test.jsonl", "test repository JSONL")
	model := fs.String("model", "model.gob", "trained model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	p, err := trainer.LoadPipelineFile(*model)
	if err != nil {
		return err
	}
	evals, err := p.EvaluateHistorical(repo.All())
	if err != nil {
		return err
	}
	trainer.SortEvals(evals)
	fmt.Printf("%-12s %-24s %-20s %s\n", "Model", "Pattern (Non-Increase)", "MAE (Curve Params)", "Median AE (Run Time)")
	for _, e := range evals {
		params := "NA"
		if !math.IsNaN(e.ParamMAE) {
			params = fmt.Sprintf("%.3f", e.ParamMAE)
		}
		fmt.Printf("%-12s %-24s %-20s %.0f%%\n", e.Model, fmt.Sprintf("%.0f%%", e.Pattern*100), params, e.RuntimeMedianAE*100)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL")
	jobID := fs.String("job", "", "job ID (defaults to the first job)")
	tokens := fs.Int("tokens", 0, "token allocation to simulate (default 50% of observed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	rec := repo.Get(*jobID)
	if rec == nil {
		if *jobID != "" {
			return fmt.Errorf("job %q not found", *jobID)
		}
		if repo.Len() == 0 {
			return fmt.Errorf("repository is empty")
		}
		rec = repo.All()[0]
	}
	tok := *tokens
	if tok <= 0 {
		tok = rec.ObservedTokens / 2
		if tok < 1 {
			tok = 1
		}
	}
	sim, err := arepas.Simulate(rec.Skyline, tok)
	if err != nil {
		return err
	}
	fmt.Printf("job %s: observed %ds at %d tokens (peak %d, area %d tok-s)\n",
		rec.Job.ID, rec.RuntimeSeconds, rec.ObservedTokens, rec.Skyline.Peak(), rec.Skyline.Area())
	fmt.Printf("AREPAS at %d tokens: %ds (%.1f%% slower), area %d tok-s\n",
		tok, sim.Runtime(), (float64(sim.Runtime())/float64(rec.RuntimeSeconds)-1)*100, sim.Area())
	return nil
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL")
	k := fs.Int("k", 8, "number of k-means clusters")
	sample := fs.Int("sample", 200, "target subset size")
	seed := fs.Int64("seed", 1, "random seed")
	minTok := fs.Int("min-tokens", 0, "pool constraint: minimum observed tokens")
	maxTok := fs.Int("max-tokens", 0, "pool constraint: maximum observed tokens")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	pool := repo.Query(jobrepo.Filter{MinTokens: *minTok, MaxTokens: *maxTok})
	res, err := selection.Select(repo.All(), pool, selection.Config{K: *k, SampleSize: *sample, MaxPerTemplate: 3, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("selected %d of %d pool jobs (population %d)\n", len(res.Selected), len(pool), repo.Len())
	fmt.Printf("KS statistic: pool %.3f -> selected %.3f\n", res.KSBefore, res.KSAfter)
	for c := range res.PopulationProportions {
		fmt.Printf("cluster %d: population %5.1f%%  pool %5.1f%%  selected %5.1f%%\n",
			c, res.PopulationProportions[c]*100, res.PoolProportions[c]*100, res.SelectedProportions[c]*100)
	}
	return nil
}

// cmdFlight runs the §5.1 protocol end to end: stratified job selection,
// redundant noisy re-execution at several token counts with anomaly
// filtering, and the Table 3 AREPAS validation.
func cmdFlight(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL")
	k := fs.Int("k", 8, "number of k-means clusters for selection")
	sample := fs.Int("sample", 100, "jobs to select and flight")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	sel, err := selection.Select(repo.All(), repo.All(),
		selection.Config{K: *k, SampleSize: *sample, MaxPerTemplate: 3, Seed: *seed})
	if err != nil {
		return err
	}
	ds, err := flight.Execute(sel.Selected, &scopesim.Executor{}, flight.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("flighted %d jobs (%d runs); rejected: %d isolated, %d overuse, %d non-monotone\n",
		len(ds.Jobs), ds.TotalRuns, ds.RejectedIsolated, ds.RejectedOveruse, ds.RejectedNonMonotone)
	rep, err := flight.ValidateArepas(ds.Jobs)
	if err != nil {
		return err
	}
	fmt.Printf("AREPAS vs flighted ground truth over %d comparisons: MedianAPE %.1f%%, MeanAPE %.1f%%\n",
		rep.Comparisons, rep.MedianAPE*100, rep.MeanAPE*100)
	full := ds.FullyMatched(0.3)
	fullRep, err := flight.ValidateArepas(full)
	if err != nil {
		return err
	}
	fmt.Printf("fully-matched subset (%d jobs): MedianAPE %.1f%%, MeanAPE %.1f%%\n",
		len(full), fullRep.MedianAPE*100, fullRep.MeanAPE*100)
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL")
	modelPath := fs.String("model", "model.gob", "trained model path")
	jobID := fs.String("job", "", "job ID (defaults to the first job)")
	threshold := fs.Float64("threshold", 0.01, "optimal-allocation threshold (marginal gain per token)")
	predictor := fs.String("predictor", "", "score with this predictor (e.g. NN, 'XGBoost PL', Jockey); empty follows the fallback policy")
	policyFlag := fs.String("policy", "", "comma-separated predictor fallback chain (e.g. 'GNN,NN'); ignored when -predictor is set")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	p, err := trainer.LoadPipelineFile(*modelPath)
	if err != nil {
		return err
	}
	p.ScorePolicy = model.ParsePolicy(*policyFlag)
	rec := repo.Get(*jobID)
	if rec == nil {
		if *jobID != "" {
			return fmt.Errorf("job %q not found", *jobID)
		}
		if repo.Len() == 0 {
			return fmt.Errorf("repository is empty")
		}
		rec = repo.All()[0]
	}
	curve, modelName, err := p.ScoreJobModel(*predictor, rec.Job)
	if err != nil {
		return err
	}
	opt := curve.OptimalTokens(1, rec.ObservedTokens, *threshold)
	fmt.Printf("job %s scored by %s: %s\n", rec.Job.ID, modelName, curve)
	fmt.Printf("requested %d tokens; optimal %d tokens (threshold %.2f%%/token)\n",
		rec.ObservedTokens, opt, *threshold*100)
	fmt.Println("what-if run times:")
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		tok := int(f * float64(rec.ObservedTokens))
		if tok < 1 {
			tok = 1
		}
		fmt.Printf("  %4d tokens -> %7.1fs\n", tok, curve.Runtime(float64(tok)))
	}
	return nil
}

// cmdPlan allocates a batch of repository jobs against a shared token
// pool: scoring each job's PCC, applying the chosen allocation policy,
// and simulating the chosen scheduling strategy (-strategy fcfs,
// backfill or retry). With -addr the batch is posted to a live tasqd's
// /v1/plan; otherwise planning runs in process from -model.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	data := fs.String("data", "repo.jsonl", "repository JSONL")
	modelPath := fs.String("model", "model.gob", "trained model path (local mode)")
	addr := fs.String("addr", "", "base URL of a running tasqd; empty plans locally from -model")
	n := fs.Int("n", 0, "jobs to plan (0 = the whole repository)")
	capacity := fs.Int("capacity", 400, "pool capacity in guaranteed tokens")
	alloc := fs.String("alloc", "optimal", "allocation policy: default, peak, adaptive-peak or optimal")
	strategy := fs.String("strategy", "fcfs", "scheduling strategy: fcfs, backfill or retry")
	threshold := fs.Float64("threshold", 0.01, "optimal-allocation threshold (marginal gain per token)")
	predictor := fs.String("predictor", "", "score with this predictor (e.g. NN, AutoToken); empty follows the fallback policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := jobrepo.LoadFile(*data)
	if err != nil {
		return err
	}
	recs := repo.All()
	if len(recs) == 0 {
		return fmt.Errorf("repository is empty")
	}
	if *n > 0 && *n < len(recs) {
		recs = recs[:*n]
	}

	if *addr != "" {
		req := &serve.PlanRequest{
			CapacityTokens: *capacity,
			Policy:         *alloc,
			Strategy:       *strategy,
			Model:          *predictor,
			Threshold:      *threshold,
		}
		for _, rec := range recs {
			req.Jobs = append(req.Jobs, rec.Job)
		}
		resp, err := serve.NewClient(*addr).Plan(req)
		if err != nil {
			return err
		}
		printPlan(resp)
		return nil
	}

	p, err := trainer.LoadPipelineFile(*modelPath)
	if err != nil {
		return err
	}
	policy, err := plan.ParsePolicyKind(*alloc)
	if err != nil {
		return err
	}
	sched, err := plan.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	specs := make([]plan.JobSpec, len(recs))
	served := make([]string, len(recs))
	for i, rec := range recs {
		curve, name, err := p.ScoreJobModel(*predictor, rec.Job)
		if err != nil {
			return fmt.Errorf("scoring job %s: %w", rec.Job.ID, err)
		}
		specs[i] = plan.JobSpec{
			ID:              rec.Job.ID,
			RequestedTokens: rec.Job.RequestedTokens,
			PeakTokens:      rec.Job.PeakParallelism(),
			Curve:           curve,
		}
		served[i] = name
	}
	built, err := plan.Build(specs, plan.Config{Capacity: *capacity, Policy: policy, Threshold: *threshold, Strategy: sched})
	if err != nil {
		return err
	}
	resp := &serve.PlanResponse{
		Policy:                   built.Policy.String(),
		Strategy:                 built.Strategy.String(),
		CapacityTokens:           built.Capacity,
		MakespanSeconds:          built.Stats.MakespanSeconds,
		MeanWaitSeconds:          built.Stats.MeanWaitSeconds,
		MaxWaitSeconds:           built.Stats.MaxWaitSeconds,
		TotalTokenSeconds:        built.Stats.TotalTokenSeconds,
		PeakBaselineTokenSeconds: built.Stats.TotalTokenSeconds,
		Retries:                  built.Stats.Retries,
		RetryWasteTokenSeconds:   built.Stats.RetryWasteTokenSeconds,
		DeadlineViolations:       built.Stats.DeadlineViolations,
		FellBackToFCFS:           built.FellBack,
	}
	if base, err := plan.Build(specs, plan.Config{Capacity: *capacity, Policy: plan.PolicyPeak}); err == nil {
		resp.PeakBaselineTokenSeconds = base.Stats.TotalTokenSeconds
	}
	resp.SavedTokenSeconds = resp.PeakBaselineTokenSeconds - resp.TotalTokenSeconds
	for i, out := range built.Outcomes {
		j := serve.PlanJobJSON{
			ID:                      out.ID,
			Model:                   served[i],
			Tokens:                  built.Allocations[i].Tokens,
			PredictedRuntimeSeconds: built.Allocations[i].DurationSeconds,
			StartSecond:             out.StartSecond,
			WaitSeconds:             out.WaitSeconds,
			EndSecond:               out.EndSecond,
			Attempts:                1,
		}
		if a := built.Allocations[i]; a.RetryTokens > 0 {
			j.Attempts = 2
			j.RetryTokens = a.RetryTokens
			j.RetryRuntimeSeconds = a.RetryDurationSeconds
			j.RetryStartSecond = out.RetryStartSecond
		}
		resp.Jobs = append(resp.Jobs, j)
	}
	printPlan(resp)
	return nil
}

// printPlan renders a plan: the first jobs row by row, then the
// cluster-level cost and queueing summary.
func printPlan(resp *serve.PlanResponse) {
	how := resp.Strategy
	if how == "" {
		how = "fcfs"
	}
	if resp.FellBackToFCFS {
		how += " (fell back to fcfs)"
	}
	fmt.Printf("planned %d jobs under %s / %s (pool %d tokens)\n",
		len(resp.Jobs), resp.Policy, how, resp.CapacityTokens)
	const maxRows = 10
	fmt.Printf("%-14s %-14s %7s %9s %7s %6s %7s\n", "JOB", "MODEL", "TOKENS", "RUNTIME_S", "START", "WAIT", "END")
	for i, j := range resp.Jobs {
		if i == maxRows {
			fmt.Printf("… %d more jobs\n", len(resp.Jobs)-maxRows)
			break
		}
		fmt.Printf("%-14s %-14s %7d %9d %7d %6d %7d\n",
			j.ID, j.Model, j.Tokens, j.PredictedRuntimeSeconds, j.StartSecond, j.WaitSeconds, j.EndSecond)
	}
	fmt.Printf("makespan %ds, queue wait mean %.1fs max %ds\n",
		resp.MakespanSeconds, resp.MeanWaitSeconds, resp.MaxWaitSeconds)
	savedPct := 0.0
	if resp.PeakBaselineTokenSeconds > 0 {
		savedPct = 100 * float64(resp.SavedTokenSeconds) / float64(resp.PeakBaselineTokenSeconds)
	}
	fmt.Printf("cost %d token-seconds vs %d peak baseline: saved %d (%.1f%%)\n",
		resp.TotalTokenSeconds, resp.PeakBaselineTokenSeconds, resp.SavedTokenSeconds, savedPct)
	if resp.Retries > 0 {
		fmt.Printf("retries: %d jobs overran their first slice, wasting %d token-seconds\n",
			resp.Retries, resp.RetryWasteTokenSeconds)
	}
	if resp.DeadlineViolations > 0 {
		fmt.Printf("deadline violations: %d\n", resp.DeadlineViolations)
	}
}
