package main

import (
	"os"
	"path/filepath"
	"testing"

	"tasq/internal/registry"
)

// TestCLIWorkflow drives the full generate → stats → train → evaluate →
// simulate → select → score workflow through run().
func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	repo := filepath.Join(dir, "repo.jsonl")
	model := filepath.Join(dir, "model.gob")

	steps := [][]string{
		{"generate", "-n", "120", "-seed", "3", "-scale", "0.25", "-out", repo},
		{"stats", "-data", repo},
		{"train", "-data", repo, "-out", model, "-nn-epochs", "10", "-skip-gnn"},
		{"evaluate", "-data", repo, "-model", model},
		{"simulate", "-data", repo},
		{"select", "-data", repo, "-k", "4", "-sample", "20"},
		{"flight", "-data", repo, "-k", "4", "-sample", "15"},
		{"score", "-data", repo, "-model", model},
		{"score", "-data", repo, "-model", model, "-predictor", "jockey"},
		{"score", "-data", repo, "-model", model, "-policy", "XGBoost-PL,NN"},
		{"plan", "-data", repo, "-model", model, "-capacity", "400", "-n", "50"},
		{"plan", "-data", repo, "-model", model, "-capacity", "400", "-alloc", "peak"},
		{"plan", "-data", repo, "-model", model, "-capacity", "200", "-predictor", "jockey", "-threshold", "0.05"},
		{"plan", "-data", repo, "-model", model, "-capacity", "400", "-strategy", "backfill"},
		{"plan", "-data", repo, "-model", model, "-capacity", "400", "-strategy", "retry"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("tasq %v: %v", args, err)
		}
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model file not written: %v", err)
	}
	// By-name routing fails loudly for unknown and untrained predictors.
	if err := run([]string{"score", "-data", repo, "-model", model, "-predictor", "resnet"}); err == nil {
		t.Fatal("unknown predictor accepted by score")
	}
	if err := run([]string{"score", "-data", repo, "-model", model, "-predictor", "GNN"}); err == nil {
		t.Fatal("untrained GNN accepted by score on a -skip-gnn model")
	}
	// Planning inherits the same routing discipline plus pool validation.
	if err := run([]string{"plan", "-data", repo, "-model", model, "-predictor", "resnet"}); err == nil {
		t.Fatal("unknown predictor accepted by plan")
	}
	if err := run([]string{"plan", "-data", repo, "-model", model, "-capacity", "0"}); err == nil {
		t.Fatal("zero-capacity pool accepted by plan")
	}
	if err := run([]string{"plan", "-data", repo, "-model", model, "-alloc", "lifo"}); err == nil {
		t.Fatal("unknown allocation policy accepted by plan")
	}
	if err := run([]string{"plan", "-data", repo, "-model", model, "-strategy", "lifo"}); err == nil {
		t.Fatal("unknown scheduling strategy accepted by plan")
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"stats", "-data", "/nonexistent/repo.jsonl"}); err == nil {
		t.Fatal("missing data file accepted")
	}
	if err := run([]string{"train", "-data", "/nonexistent/repo.jsonl"}); err == nil {
		t.Fatal("missing training data accepted")
	}
	if err := run([]string{"train", "-loss", "LF9"}); err == nil {
		t.Fatal("bad loss accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help failed: %v", err)
	}
}

func TestCLIUnknownJob(t *testing.T) {
	dir := t.TempDir()
	repo := filepath.Join(dir, "repo.jsonl")
	model := filepath.Join(dir, "model.gob")
	if err := run([]string{"generate", "-n", "30", "-seed", "1", "-scale", "0.25", "-out", repo}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"train", "-data", repo, "-out", model, "-nn-epochs", "5", "-skip-gnn"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-data", repo, "-job", "nope"}); err == nil {
		t.Fatal("unknown job accepted by simulate")
	}
	if err := run([]string{"score", "-data", repo, "-model", model, "-job", "nope"}); err == nil {
		t.Fatal("unknown job accepted by score")
	}
}

// TestCLIRegistryLifecycle drives the model-store lifecycle through
// run(): train-and-publish twice, list, pin, show, gc, unpin.
func TestCLIRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()
	repo := filepath.Join(dir, "repo.jsonl")
	model := filepath.Join(dir, "model.gob")
	store := filepath.Join(dir, "models")

	if err := run([]string{"generate", "-n", "40", "-seed", "5", "-scale", "0.25", "-out", repo}); err != nil {
		t.Fatal(err)
	}
	train := []string{"train", "-data", repo, "-out", model, "-nn-epochs", "5", "-skip-gnn",
		"-registry", store, "-eval-data", repo, "-notes", "first"}
	if err := run(train); err != nil {
		t.Fatalf("train+publish: %v", err)
	}
	if err := run(train); err != nil {
		t.Fatalf("second publish: %v", err)
	}

	reg, err := registry.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("published %d versions, want 2", len(ms))
	}
	if ms[0].Train.Jobs != 40 || ms[0].Notes != "first" {
		t.Fatalf("manifest %+v", ms[0])
	}
	if len(ms[0].EvalMetrics) == 0 {
		t.Fatal("eval metrics missing from manifest")
	}

	steps := [][]string{
		{"registry", "list", "-dir", store},
		{"registry", "show", "-dir", store},
		{"registry", "show", "-dir", store, "-version", "1"},
		{"registry", "pin", "-dir", store, "-version", "1"},
		{"registry", "gc", "-dir", store, "-keep", "1"},
		{"registry", "unpin", "-dir", store},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("tasq %v: %v", args, err)
		}
	}
	// gc -keep 1 with v1 pinned keeps both the pinned v1 and newest v2.
	vs, err := reg.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("versions after pinned gc: %v", vs)
	}

	if err := run([]string{"registry"}); err == nil {
		t.Fatal("registry without action accepted")
	}
	if err := run([]string{"registry", "frobnicate", "-dir", store}); err == nil {
		t.Fatal("unknown registry action accepted")
	}
	if err := run([]string{"registry", "pin", "-dir", store}); err == nil {
		t.Fatal("pin without -version accepted")
	}
	if err := run([]string{"train", "-data", repo, "-out", model, "-eval-data", repo}); err == nil {
		t.Fatal("-eval-data without -registry accepted")
	}
}

func TestParseLoss(t *testing.T) {
	for _, ok := range []string{"LF1", "lf2", "LF3", ""} {
		if _, err := parseLoss(ok); err != nil {
			t.Fatalf("parseLoss(%q): %v", ok, err)
		}
	}
	if _, err := parseLoss("LF4"); err == nil {
		t.Fatal("LF4 accepted")
	}
}
