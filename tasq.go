package tasq

import (
	"math/rand"
	"time"

	"tasq/internal/arepas"
	"tasq/internal/flight"
	"tasq/internal/jobrepo"
	"tasq/internal/model"
	"tasq/internal/pcc"
	"tasq/internal/plan"
	"tasq/internal/registry"
	"tasq/internal/scheduler"
	"tasq/internal/scopesim"
	"tasq/internal/selection"
	"tasq/internal/serve"
	"tasq/internal/skyline"
	"tasq/internal/sparkadapt"
	"tasq/internal/stats"
	"tasq/internal/trainer"
	"tasq/internal/workload"
)

// Core domain types.
type (
	// Job is a SCOPE-like analytical job: a DAG of physical operators
	// grouped into stages, plus submission metadata.
	Job = scopesim.Job
	// Operator is one node of a job's physical plan.
	Operator = scopesim.Operator
	// Stage is a unit of scheduling within a job.
	Stage = scopesim.Stage
	// OpMetrics carries the Table 1 per-operator quantities.
	OpMetrics = scopesim.OpMetrics
	// Skyline is a job's per-second token usage.
	Skyline = skyline.Skyline
	// PCC is the power-law performance characteristic curve R = b·Aᵃ.
	PCC = pcc.Curve
	// PCCSample is one (tokens, runtime) observation for curve fitting.
	PCCSample = pcc.Sample
	// Executor runs jobs on the simulated token-based cluster.
	Executor = scopesim.Executor
	// ExecutionNoise configures stochastic flighting runs.
	ExecutionNoise = scopesim.Noise
	// Record pairs a job with its observed production telemetry.
	Record = jobrepo.Record
	// Repository stores historical records.
	Repository = jobrepo.Repository
	// RepositoryFilter restricts repository queries.
	RepositoryFilter = jobrepo.Filter
	// Pipeline is a trained TASQ model suite.
	Pipeline = trainer.Pipeline
	// TrainConfig controls pipeline training.
	TrainConfig = trainer.Config
	// ModelEval is one model-comparison row (Tables 4–6/8 of the paper).
	ModelEval = trainer.ModelEval
	// WorkloadGenerator synthesizes SCOPE-like workloads.
	WorkloadGenerator = workload.Generator
	// WorkloadConfig controls workload synthesis.
	WorkloadConfig = workload.Config
	// FlightDataset is the outcome of a §5.1 flighting experiment.
	FlightDataset = flight.Dataset
	// FlightConfig controls the flighting protocol.
	FlightConfig = flight.Config
	// SelectionConfig controls §5.1 stratified job selection.
	SelectionConfig = selection.Config
	// SelectionResult reports the selected subset and its quality.
	SelectionResult = selection.Result
	// Cluster is a fixed-capacity FCFS token pool.
	Cluster = scheduler.Cluster
	// Submission is one job entering the cluster queue.
	Submission = scheduler.Submission
	// TokenPool is the shared all-or-nothing token ledger both the
	// scheduler and the scopesim executor draw from.
	TokenPool = plan.Pool
	// AllocationPolicy selects a Figure-1 allocation strategy.
	AllocationPolicy = plan.PolicyKind
	// PlanJobSpec is one job's planning input: identity, arrival, the
	// requested and peak token counts, and its predicted PCC.
	PlanJobSpec = plan.JobSpec
	// PlanConfig selects the pool capacity, policy, threshold, scheduling
	// strategy and tenant quotas for BuildPlan.
	PlanConfig = plan.Config
	// PlanStrategy selects how BuildPlan schedules allocated jobs onto
	// the pool: FCFS, deadline-aware backfill, or first-allocation retry.
	PlanStrategy = plan.Strategy
	// TenantQuota caps each tenant's concurrently held tokens inside a
	// shared pool (PlanConfig.Quota).
	TenantQuota = plan.Quota
	// ClusterPlan is a built plan: per-job allocations, the simulated
	// FCFS schedule, and aggregate queueing statistics.
	ClusterPlan = plan.Plan
	// PlanRequest is the POST /v1/plan input: a job batch, a pool
	// capacity, and the policy/model/threshold driving allocation.
	PlanRequest = serve.PlanRequest
	// PlanResponse is the planner's answer, including the Peak-baseline
	// cost and saved token-seconds.
	PlanResponse = serve.PlanResponse
	// ScoringServer serves PCC predictions over HTTP (Figure 4).
	ScoringServer = serve.Server
	// ScoringClient calls a scoring service.
	ScoringClient = serve.Client
	// ScoreRequest is the scoring-endpoint input.
	ScoreRequest = serve.ScoreRequest
	// ScoreResponse is the scoring-endpoint output.
	ScoreResponse = serve.ScoreResponse
	// BatchScoreRequest scores several jobs in one concurrent call.
	BatchScoreRequest = serve.BatchScoreRequest
	// BatchScoreResponse reports per-item batch outcomes in input order.
	BatchScoreResponse = serve.BatchScoreResponse
	// BatchItemResult is one batch item's outcome (response or error).
	BatchItemResult = serve.BatchItemResult
	// ScoringOption customizes a ScoringServer (worker-pool size, shared
	// metrics registry, request logging).
	ScoringOption = serve.Option
	// ScoringStatusError carries the HTTP status of a failed scoring call,
	// distinguishing invalid requests (400) from service failures (500).
	ScoringStatusError = serve.StatusError
	// ModelRegistry is the versioned model store of Figure 4: atomic
	// publish, checksum-verified load, pinning and GC.
	ModelRegistry = registry.Registry
	// ModelManifest describes one published registry version.
	ModelManifest = registry.Manifest
	// ModelReloader hot-swaps a ScoringServer against a ModelRegistry.
	ModelReloader = serve.Reloader
	// Predictor is one registered curve model: a trained model or a
	// prior-art baseline, addressable by name.
	Predictor = model.Predictor
	// PredictorInfo describes one registered predictor (name, kind,
	// trained state) — what GET /v1/models returns per entry.
	PredictorInfo = model.Info
	// PredictorPolicy is an ordered fallback chain of predictor names;
	// assign one to Pipeline.ScorePolicy to override the default
	// NN → GNN → XGBoost-PL order.
	PredictorPolicy = model.Policy
)

// Loss kinds for the constrained neural models (§4.5 of the paper).
const (
	LF1 = trainer.LF1
	LF2 = trainer.LF2
	LF3 = trainer.LF3
)

// NewExecutor returns a deterministic cluster executor.
func NewExecutor() *Executor { return &Executor{} }

// NewRepository returns an empty historical job repository.
func NewRepository() *Repository { return jobrepo.New() }

// LoadRepository reads a repository from a JSON-Lines file.
func LoadRepository(path string) (*Repository, error) { return jobrepo.LoadFile(path) }

// NewWorkloadGenerator builds a synthetic workload generator.
func NewWorkloadGenerator(cfg WorkloadConfig) *WorkloadGenerator { return workload.New(cfg) }

// DefaultWorkloadConfig returns the production-like synthesis defaults.
func DefaultWorkloadConfig(seed int64) WorkloadConfig { return workload.DefaultConfig(seed) }

// SmallWorkloadConfig returns a reduced-scale configuration suitable for
// examples, demos and tests.
func SmallWorkloadConfig(seed int64) WorkloadConfig { return workload.TestConfig(seed) }

// TrainPipeline trains the TASQ model suite on historical records.
func TrainPipeline(recs []*Record, cfg TrainConfig) (*Pipeline, error) {
	return trainer.Train(recs, cfg)
}

// DefaultTrainConfig returns the paper's preferred (LF2) configuration.
func DefaultTrainConfig(seed int64) TrainConfig { return trainer.DefaultConfig(seed) }

// SavePipeline writes a trained pipeline to a file (the "model binary" of
// the paper's model store).
func SavePipeline(p *Pipeline, path string) error { return trainer.SavePipelineFile(p, path) }

// LoadPipeline reads a trained pipeline from a file.
func LoadPipeline(path string) (*Pipeline, error) { return trainer.LoadPipelineFile(path) }

// SimulateSkyline runs AREPAS (Algorithm 1): the skyline the same job
// would produce at a different token allocation, under area preservation.
func SimulateSkyline(orig Skyline, tokens int) (Skyline, error) {
	return arepas.Simulate(orig, tokens)
}

// SimulateRuntime returns only AREPAS's simulated run time.
func SimulateRuntime(orig Skyline, tokens int) (int, error) {
	return arepas.SimulateRuntime(orig, tokens)
}

// FitPCC fits the power-law curve to samples in log–log space.
func FitPCC(samples []PCCSample) (PCC, error) { return pcc.Fit(samples) }

// SelectJobs runs the §5.1 stratified under-sampling procedure.
func SelectJobs(population, pool []*Record, cfg SelectionConfig) (*SelectionResult, error) {
	return selection.Select(population, pool, cfg)
}

// DefaultSelectionConfig mirrors the paper's selection setup.
func DefaultSelectionConfig(seed int64) SelectionConfig { return selection.DefaultConfig(seed) }

// FlightJobs re-executes selected jobs at several token counts with
// redundancy and anomaly filtering (§5.1).
func FlightJobs(selected []*Record, ex *Executor, cfg FlightConfig) (*FlightDataset, error) {
	return flight.Execute(selected, ex, cfg)
}

// DefaultFlightConfig mirrors the paper's flighting protocol.
func DefaultFlightConfig(seed int64) FlightConfig { return flight.DefaultConfig(seed) }

// NewScoringServer wraps a trained pipeline as an HTTP service with
// batch scoring, Prometheus metrics and readiness probes.
func NewScoringServer(p *Pipeline, opts ...ScoringOption) (*ScoringServer, error) {
	return serve.NewServer(p, opts...)
}

// NewScoringClient returns a client for a scoring service base URL.
func NewScoringClient(baseURL string) *ScoringClient { return serve.NewClient(baseURL) }

// NewUnloadedScoringServer returns a scoring server with no model yet;
// it answers 503 until a ModelReloader (or SetActive) installs one.
func NewUnloadedScoringServer(opts ...ScoringOption) (*ScoringServer, error) {
	return serve.NewUnloadedServer(opts...)
}

// OpenModelRegistry opens (creating if needed) a versioned model store
// rooted at dir.
func OpenModelRegistry(dir string) (*ModelRegistry, error) { return registry.Open(dir) }

// NewModelReloader wires a ScoringServer to a ModelRegistry: Sync once
// before serving, then Run in a goroutine for hot reload.
func NewModelReloader(reg *ModelRegistry, srv *ScoringServer, interval time.Duration) *ModelReloader {
	return serve.NewReloader(reg, srv, interval, nil)
}

// Figure-1 allocation policies, usable in PlanConfig.Policy.
const (
	DefaultAllocation      = plan.PolicyDefault
	PeakAllocation         = plan.PolicyPeak
	AdaptivePeakAllocation = plan.PolicyAdaptivePeak
	OptimalAllocation      = plan.PolicyOptimal
)

// Scheduling strategies, usable in PlanConfig.Strategy.
const (
	// FCFSStrategy admits jobs strictly in arrival order.
	FCFSStrategy = plan.StrategyFCFS
	// BackfillStrategy packs later jobs into pool gaps, deadline-first,
	// falling back to FCFS whenever packing would regress a feasible
	// deadline or the makespan.
	BackfillStrategy = plan.StrategyBackfill
	// RetryStrategy grants a sub-peak first slice and re-runs simulated
	// overruns at peak, accounting both attempts.
	RetryStrategy = plan.StrategyRetry
)

// NewTokenPool returns a token ledger of the given capacity.
func NewTokenPool(capacity int) (*TokenPool, error) { return plan.NewPool(capacity) }

// NewQuotaTokenPool returns a token ledger of the given capacity with
// per-tenant concurrent-hold caps.
func NewQuotaTokenPool(capacity int, quota TenantQuota) (*TokenPool, error) {
	return plan.NewPoolQuota(capacity, quota)
}

// BuildPlan allocates a batch of jobs against a shared token pool and
// simulates the resulting FCFS schedule — the in-process form of the
// scoring service's POST /v1/plan.
func BuildPlan(specs []PlanJobSpec, cfg PlanConfig) (*ClusterPlan, error) {
	return plan.Build(specs, cfg)
}

// ParseAllocationPolicy parses a policy name ("default", "peak",
// "adaptive-peak", "optimal", or a Figure-1 display name); the empty
// string selects OptimalAllocation.
func ParseAllocationPolicy(s string) (AllocationPolicy, error) { return plan.ParsePolicyKind(s) }

// ParsePlanStrategy parses a scheduling-strategy name ("fcfs",
// "backfill" or "retry", case- and whitespace-insensitive); the empty
// string selects FCFSStrategy.
func ParsePlanStrategy(s string) (PlanStrategy, error) { return plan.ParseStrategy(s) }

// ParsePredictorPolicy parses a comma-separated fallback chain such as
// "GNN,NN" (names are case- and punctuation-insensitive); the empty
// string selects the built-in default.
func ParsePredictorPolicy(s string) PredictorPolicy { return model.ParsePolicy(s) }

// MedianAPE returns the median absolute percentage error (as a fraction)
// between predictions and ground truth.
func MedianAPE(pred, truth []float64) float64 { return stats.MedianAPE(pred, truth) }

// NewRand returns a seeded random source, for deterministic examples.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Spark SQL adaptation (§2.3 of the paper: applicability to other
// platforms, in the style of the companion AutoExecutor work).
type (
	// SparkPlatform describes a Spark deployment: executors with several
	// task slots each, plus a fixed fleet startup cost.
	SparkPlatform = sparkadapt.Platform
	// SparkModel predicts query run time per executor count and fits
	// scaled-Amdahl curves R(E) = S + P/E.
	SparkModel = sparkadapt.Model
	// SparkCurve is the Spark adaptation's performance characteristic
	// curve.
	SparkCurve = sparkadapt.Curve
)

// TrainSparkModel fits the Spark SQL adaptation on historical records.
func TrainSparkModel(recs []*Record, platform SparkPlatform) (*SparkModel, error) {
	return sparkadapt.Train(recs, platform, sparkadapt.TrainConfig{})
}
